// Package mvutil provides small utilities shared by the multi-versioned
// engines (TWM in internal/core and JVSTM in internal/jvstm): an active
// transaction registry used to bound version garbage collection.
package mvutil

import (
	"sync"
	"sync/atomic"
)

// ActiveSet tracks the start timestamps of in-flight transactions so a
// version garbage collector can compute the oldest snapshot any active
// transaction may still read. It is sharded to keep registration off the
// global contention path: a Slot is pinned to a home shard the first time it
// registers, so the steady-state Register/Unregister path touches only that
// shard's lock — no globally shared counter.
type ActiveSet struct {
	seq    atomic.Uint64 // home-shard assignment; cold path (once per Slot)
	shards [activeShards]activeShard
}

// activeShards must be a power of two (shard choice is a mask).
const activeShards = 16

// activeShard is padded out to 128 bytes (two cache lines, the destructive
// interference granularity with adjacent-line prefetching) so concurrent
// registrations on neighboring shards do not false-share.
type activeShard struct {
	mu    sync.Mutex
	slots map[*Slot]struct{}

	_ [128 - 16]byte
}

// Slot is one registration. Slots are reusable: engines embed one in their
// pooled transaction descriptor and pass it to Register on every Begin, so
// registration allocates nothing. A Slot must not be registered with more
// than one ActiveSet over its lifetime (its home shard is sticky), and
// Register/Unregister calls on it must alternate.
type Slot struct {
	start uint64
	// vec is the per-clock-shard snapshot vector of a RegisterVec
	// registration (nil for scalar Register). The slice is owned by the
	// registrant, which must not mutate it while the slot is registered; the
	// shard mutex taken by RegisterVec orders the vector's contents before
	// any MinStarts read.
	vec  []uint64
	home *activeShard
}

// NewActiveSet returns an initialized registry.
func NewActiveSet() *ActiveSet {
	a := &ActiveSet{}
	for i := range a.shards {
		a.shards[i].slots = make(map[*Slot]struct{})
	}
	return a
}

// Register records a transaction whose start timestamp will be at least
// start. It must be called before the transaction samples its snapshot, so
// the GC bound can never overtake a live snapshot. The first registration of
// a Slot picks its home shard (one global atomic add, amortized over the
// slot's pooled lifetime); later registrations go straight to that shard.
func (a *ActiveSet) Register(slot *Slot, start uint64) {
	sh := slot.home
	if sh == nil {
		sh = &a.shards[a.seq.Add(1)&(activeShards-1)]
		slot.home = sh
	}
	slot.start = start
	slot.vec = nil
	sh.mu.Lock()
	sh.slots[slot] = struct{}{}
	sh.mu.Unlock()
}

// RegisterVec is Register for a transaction begun on a per-clock-shard
// snapshot vector: scalar consumers (MinStart) see min, and per-shard
// consumers (MinStarts) see each component — so one shard's GC bound is
// never dragged down by a transaction whose snapshot of that shard is
// actually recent, just because some *other* shard's clock lags. min must be
// the minimum of vec; the registrant must not mutate vec while registered.
func (a *ActiveSet) RegisterVec(slot *Slot, vec []uint64, min uint64) {
	sh := slot.home
	if sh == nil {
		sh = &a.shards[a.seq.Add(1)&(activeShards-1)]
		slot.home = sh
	}
	slot.start = min
	slot.vec = vec
	sh.mu.Lock()
	sh.slots[slot] = struct{}{}
	sh.mu.Unlock()
}

// Unregister removes a finished transaction. Unregistering a slot that was
// never registered is a no-op.
func (a *ActiveSet) Unregister(slot *Slot) {
	sh := slot.home
	if sh == nil {
		return
	}
	sh.mu.Lock()
	delete(sh.slots, slot)
	sh.mu.Unlock()
}

// MinStart returns the smallest registered start timestamp, or fallback when
// nothing is registered.
func (a *ActiveSet) MinStart(fallback uint64) uint64 {
	min := fallback
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for slot := range sh.slots {
			if slot.start < min {
				min = slot.start
			}
		}
		sh.mu.Unlock()
	}
	return min
}

// MinStarts folds the per-clock-shard minimum start into dst, which the
// caller pre-fills with per-shard fallbacks (typically each shard's clock).
// Vector registrations contribute component-wise; scalar ones contribute
// their single start to every component (the conservative reading — a scalar
// registrant's snapshot position on any shard's line is unknown).
func (a *ActiveSet) MinStarts(dst []uint64) {
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for slot := range sh.slots {
			if len(slot.vec) == len(dst) {
				for s, c := range slot.vec {
					if c < dst[s] {
						dst[s] = c
					}
				}
				continue
			}
			for s := range dst {
				if slot.start < dst[s] {
					dst[s] = slot.start
				}
			}
		}
		sh.mu.Unlock()
	}
}
