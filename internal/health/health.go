// Package health is a liveness watchdog for the STM engines. The engines'
// own mechanisms (contention management, version GC, the admission gate, the
// version budget) each defend one failure mode locally; the watchdog is the
// cross-cutting observer that notices when a mechanism is losing — a snapshot
// pinned so long that version GC cannot advance, an abort rate that starves
// commits (livelock), a commit clock that stops moving, a version budget
// stuck at hard pressure — and says so, through JSON-able snapshots and
// raise/clear alert callbacks, optionally remediating (see
// EscalationRemediation).
//
// Detection samples only monotone counters and atomics the engines already
// maintain (stm.Stats, mvutil.ActiveSet, mvutil.VersionBudget, the commit
// clock), so the steady-state sampling path allocates nothing and perturbs
// nothing — the watchdog observes a struggling system without adding load to
// it. Conditions are raised only after RaiseAfter consecutive bad windows and
// cleared only after ClearAfter consecutive good ones, so one anomalous
// sample neither raises nor clears anything.
package health

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mvutil"
	"repro/internal/stm"
)

// Condition is one failure mode the watchdog detects.
type Condition uint8

const (
	// CondLivelock: the abort rate is consuming the engine's throughput —
	// a window saw at least MinAborts aborts and not a single commit.
	CondLivelock Condition = iota
	// CondStuck: the oldest active snapshot lags the clock by at least
	// StuckClockLag ticks. Version GC cannot advance past that snapshot, so
	// a stuck (or leaked) transaction turns into unbounded version memory.
	CondStuck
	// CondClockStall: attempts are starting but nothing finishes — no
	// commits, no aborts and no commit-clock motion across a window with
	// starts. Distinct from livelock (which churns); a stall means
	// transactions are wedged mid-flight (e.g. spinning on a lock nobody
	// releases). The clock term matters under group commit: one batched
	// advance covers N commits that the leader records one member at a time,
	// so a window can land after the tick but before the member counters —
	// moving ticks prove the commit stage is alive even when the counters
	// have not caught up yet.
	CondClockStall
	// CondBudget: the version budget reads hard pressure — installs are
	// being refused (or imminently will be) with stm.ReasonMemoryPressure.
	CondBudget
	// CondWALStall: the engine's write-ahead log is failing or wedged — the
	// writer has latched an error (every further commit aborts with
	// stm.ReasonDurability), or appended records are pending durability and
	// the synced watermark made no progress across the window (an fsync that
	// never returns; committers under per-commit or per-batch policies are
	// blocked inside Durable).
	CondWALStall
	numConditions
)

// String returns a short stable label for the condition.
func (c Condition) String() string {
	switch c {
	case CondLivelock:
		return "livelock"
	case CondStuck:
		return "stuck-snapshot"
	case CondClockStall:
		return "clock-stall"
	case CondBudget:
		return "budget-hard"
	case CondWALStall:
		return "wal-stall"
	}
	return "unknown"
}

// WALProber exposes the write-ahead-log counters the watchdog samples.
// wal.Writer implements it; the indirection keeps this package free of a wal
// dependency so clockless or WAL-less engines cost nothing.
type WALProber interface {
	// WALCounters reports records appended, records durable (synced), records
	// appended but not yet durable, and the writer's latched error (nil while
	// healthy).
	WALCounters() (appended, synced uint64, pending int, err error)
}

// Target is one observed engine. Any field but Name and Stats may be nil /
// zero; conditions that need a missing capability are simply not evaluated
// for that target. Use TargetOf to derive a Target from an engine.
type Target struct {
	// Name labels the target in snapshots and alerts.
	Name string
	// Stats is the engine's transaction counters (required).
	Stats *stm.Stats
	// Clock samples the engine's logical commit clock; nil disables
	// CondStuck.
	Clock func() uint64
	// Active is the engine's in-flight transaction registry; nil disables
	// CondStuck.
	Active *mvutil.ActiveSet
	// Budget is the engine's version budget; nil disables CondBudget.
	Budget *mvutil.VersionBudget
	// WAL is the engine's commit-log writer; nil disables CondWALStall.
	WAL WALProber
}

// Capability interfaces TargetOf probes for. The multi-version engines
// (internal/core, internal/jvstm) implement all three.
type (
	clocked     interface{ Clock() uint64 }
	activeSeter interface{ ActiveSet() *mvutil.ActiveSet }
	budgeted    interface{ Budget() *mvutil.VersionBudget }
	logged      interface{ CommitLogger() stm.CommitLogger }
)

// TargetOf derives a Target from an engine, probing the optional capabilities
// (clock, active set, version budget) with interface assertions so any
// stm.TM can be watched at whatever fidelity it supports.
func TargetOf(tm stm.TM) Target {
	t := Target{Name: tm.Name(), Stats: tm.Stats()}
	if c, ok := tm.(clocked); ok {
		t.Clock = c.Clock
	}
	if a, ok := tm.(activeSeter); ok {
		t.Active = a.ActiveSet()
	}
	if b, ok := tm.(budgeted); ok {
		t.Budget = b.Budget()
	}
	if l, ok := tm.(logged); ok {
		if p, ok := l.CommitLogger().(WALProber); ok {
			t.WAL = p
		}
	}
	return t
}

// Alert is one raise or clear transition of a condition on a target.
type Alert struct {
	Target string    `json:"target"`
	Cond   Condition `json:"-"`
	// Condition is Cond's label (the JSON field; Cond itself is the typed
	// key callbacks switch on).
	Condition string `json:"condition"`
	// Raised is true when the condition entered the active state, false on
	// the all-clear.
	Raised bool `json:"raised"`
	// Detail is a human-readable one-liner with the triggering numbers.
	Detail string `json:"detail"`
}

// AlertFunc receives raise/clear transitions. Callbacks run on the sampling
// goroutine (or the Step caller), after the watchdog's own lock is released,
// so they may call back into the watchdog or the engines.
type AlertFunc func(Alert)

// Config tunes detection. The zero value selects every default.
type Config struct {
	// SampleEvery is the sampling period of Start (default 100ms).
	SampleEvery time.Duration
	// RaiseAfter is how many consecutive bad windows raise a condition
	// (default 3).
	RaiseAfter int
	// ClearAfter is how many consecutive good windows clear an active
	// condition (default 2).
	ClearAfter int
	// MinAborts is the abort count a window must reach before it can count
	// as a livelock window (default 64); below it a commitless window is
	// treated as idle, not livelocked.
	MinAborts uint64
	// MinStarts is the attempt count a window must reach before it can count
	// as a clock-stall window (default 1).
	MinStarts uint64
	// StuckClockLag is how far (in clock ticks) the oldest active snapshot
	// may lag the clock before CondStuck trips (default 4096).
	StuckClockLag uint64
	// OnAlert are the callbacks invoked on every raise/clear transition.
	OnAlert []AlertFunc
}

func (c *Config) fill() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 100 * time.Millisecond
	}
	if c.RaiseAfter <= 0 {
		c.RaiseAfter = 3
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 2
	}
	if c.MinAborts == 0 {
		c.MinAborts = 64
	}
	if c.MinStarts == 0 {
		c.MinStarts = 1
	}
	if c.StuckClockLag == 0 {
		c.StuckClockLag = 4096
	}
}

// condState is the hysteresis state of one condition on one target.
type condState struct {
	bad, good int
	active    bool
}

// targetState is the per-target sampling state.
type targetState struct {
	starts, commits, aborts uint64 // counter values at the previous sample
	clock                   uint64 // commit-clock value at the previous sample
	// commitsPerTick is the last window's commits per clock tick — ≈1 on the
	// serial commit path, the mean batch size under group commit. Carried
	// across tickless windows (idle ticks say nothing new).
	commitsPerTick float64
	walSynced      uint64 // WAL synced watermark at the previous sample
	conds          [numConditions]condState
}

// Watchdog samples a set of targets and raises/clears condition alerts.
// Construct with New; drive with Start/Stop (background goroutine) or Step
// (deterministic tests). All methods are safe for concurrent use.
type Watchdog struct {
	cfg     Config
	targets []Target

	mu     sync.Mutex
	states []targetState
	// pending accumulates this step's transitions under mu and is drained
	// into callbacks after unlocking; the backing array is reused so a
	// transition-free step allocates nothing.
	pending []Alert

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// New returns a watchdog over the given targets. Targets cannot be added
// later; construct a new watchdog instead.
func New(cfg Config, targets ...Target) *Watchdog {
	cfg.fill()
	w := &Watchdog{
		cfg:     cfg,
		targets: targets,
		states:  make([]targetState, len(targets)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	// Prime the counter baselines so the first Step sees the first window's
	// deltas rather than process-lifetime totals.
	for i := range targets {
		st := &w.states[i]
		st.starts, st.commits, _, st.aborts = targets[i].Stats.Totals()
		if targets[i].Clock != nil {
			st.clock = targets[i].Clock()
		}
		if targets[i].WAL != nil {
			_, st.walSynced, _, _ = targets[i].WAL.WALCounters()
		}
	}
	return w
}

// Start launches the sampling goroutine. It may be called at most once; Stop
// terminates it and waits for it to exit (no goroutine leak).
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		panic("health: Watchdog started twice")
	}
	w.started = true
	w.mu.Unlock()
	go func() {
		defer close(w.done)
		tick := time.NewTicker(w.cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.Step()
			}
		}
	}()
}

// Stop terminates the sampling goroutine and waits for it. Safe to call more
// than once and without Start.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if started {
		<-w.done
	}
}

// Step runs one sampling window over every target: read the counters, judge
// each condition, advance the hysteresis, fire callbacks for transitions.
// Exported so tests can drive detection deterministically; Start calls it on
// the sampling period. The transition-free path performs no allocation.
func (w *Watchdog) Step() {
	w.mu.Lock()
	w.pending = w.pending[:0]
	for i := range w.targets {
		t := &w.targets[i]
		st := &w.states[i]
		starts, commits, _, aborts := t.Stats.Totals()
		dStarts := starts - st.starts
		dCommits := commits - st.commits
		dAborts := aborts - st.aborts
		st.starts, st.commits, st.aborts = starts, commits, aborts

		var clock, dClock uint64
		if t.Clock != nil {
			clock = t.Clock()
			dClock = clock - st.clock
			st.clock = clock
			if dClock > 0 {
				st.commitsPerTick = float64(dCommits) / float64(dClock)
			}
		}

		w.judge(t, st, CondLivelock,
			dAborts >= w.cfg.MinAborts && dCommits == 0,
			"aborts", dAborts, "commits", dCommits)

		// A clockless target (no Clock capability) is judged on the counters
		// alone, as before; a clocked one must additionally show a motionless
		// clock, so a mid-install batched advance never reads as a stall.
		w.judge(t, st, CondClockStall,
			dStarts >= w.cfg.MinStarts && dCommits == 0 && dAborts == 0 &&
				(t.Clock == nil || dClock == 0),
			"starts", dStarts, "clock-ticks", dClock)

		if t.Clock != nil && t.Active != nil {
			min := t.Active.MinStart(clock)
			w.judge(t, st, CondStuck,
				clock-min >= w.cfg.StuckClockLag,
				"clock", clock, "oldest-snapshot", min)
		}

		if t.Budget != nil {
			w.judge(t, st, CondBudget,
				t.Budget.Level() == mvutil.PressureHard,
				"versions", uint64(t.Budget.Versions()), "rejects", t.Budget.Rejects())
		}

		if t.WAL != nil {
			// Bad: the writer latched an error, or records are waiting on
			// durability with a watermark that did not move all window.
			// pending == 0 is always good — an idle or interval-policy log.
			_, synced, pending, werr := t.WAL.WALCounters()
			stalled := werr != nil || (pending > 0 && synced == st.walSynced)
			st.walSynced = synced
			w.judge(t, st, CondWALStall,
				stalled,
				"pending", uint64(pending), "synced", synced)
		}
	}
	fire := w.pending
	cbs := w.cfg.OnAlert
	w.mu.Unlock()
	for _, a := range fire {
		for _, cb := range cbs {
			cb(a)
		}
	}
}

// judge advances one condition's hysteresis given this window's verdict and
// queues an Alert on a raise or clear transition. k1/v1/k2/v2 are the numbers
// behind the verdict, formatted lazily (only when a transition fires, so the
// steady state stays allocation-free).
func (w *Watchdog) judge(t *Target, st *targetState, c Condition, bad bool, k1 string, v1 uint64, k2 string, v2 uint64) {
	cs := &st.conds[c]
	if bad {
		cs.bad++
		cs.good = 0
		if !cs.active && cs.bad >= w.cfg.RaiseAfter {
			cs.active = true
			w.pending = append(w.pending, Alert{
				Target: t.Name, Cond: c, Condition: c.String(), Raised: true,
				Detail: fmt.Sprintf("%s after %d windows (%s=%d %s=%d)", c, cs.bad, k1, v1, k2, v2),
			})
		}
		return
	}
	cs.good++
	cs.bad = 0
	if cs.active && cs.good >= w.cfg.ClearAfter {
		cs.active = false
		w.pending = append(w.pending, Alert{
			Target: t.Name, Cond: c, Condition: c.String(), Raised: false,
			Detail: fmt.Sprintf("%s cleared after %d good windows (%s=%d %s=%d)", c, cs.good, k1, v1, k2, v2),
		})
	}
}

// Active reports whether the condition is currently raised on the named
// target.
func (w *Watchdog) Active(target string, c Condition) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.targets {
		if w.targets[i].Name == target {
			return w.states[i].conds[c].active
		}
	}
	return false
}

// TargetSnapshot is the JSON-able state of one target.
type TargetSnapshot struct {
	Name     string `json:"name"`
	Starts   uint64 `json:"starts"`
	Commits  uint64 `json:"commits"`
	Aborts   uint64 `json:"aborts"`
	Clock    uint64 `json:"clock,omitempty"`
	MinStart uint64 `json:"minStart,omitempty"`
	// CommitsPerTick is the last sampled window's commits per clock tick:
	// ≈1 on a serial commit path, the mean batch size under group commit.
	CommitsPerTick float64                `json:"commitsPerTick,omitempty"`
	Budget         *mvutil.BudgetSnapshot `json:"budget,omitempty"`
	// WALPending/WALSynced/WALErr mirror the WAL prober when one is attached:
	// records appended but not yet durable, the durable watermark, and the
	// writer's latched error.
	WALPending int      `json:"walPending,omitempty"`
	WALSynced  uint64   `json:"walSynced,omitempty"`
	WALErr     string   `json:"walErr,omitempty"`
	Active     []string `json:"activeConditions,omitempty"`
}

// Snapshot is the JSON-able state of the whole watchdog.
type Snapshot struct {
	Targets []TargetSnapshot `json:"targets"`
}

// Snapshot copies the current state for reporting. Unlike Step it allocates
// (it is the reporting path, not the sampling path).
func (w *Watchdog) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := Snapshot{Targets: make([]TargetSnapshot, 0, len(w.targets))}
	for i := range w.targets {
		t := &w.targets[i]
		ts := TargetSnapshot{Name: t.Name}
		ts.Starts, ts.Commits, _, ts.Aborts = t.Stats.Totals()
		if t.Clock != nil {
			ts.Clock = t.Clock()
			ts.CommitsPerTick = w.states[i].commitsPerTick
			if t.Active != nil {
				ts.MinStart = t.Active.MinStart(ts.Clock)
			}
		}
		if t.Budget != nil {
			b := t.Budget.Snapshot()
			ts.Budget = &b
		}
		if t.WAL != nil {
			var werr error
			_, ts.WALSynced, ts.WALPending, werr = t.WAL.WALCounters()
			if werr != nil {
				ts.WALErr = werr.Error()
			}
		}
		for c := Condition(0); c < numConditions; c++ {
			if w.states[i].conds[c].active {
				ts.Active = append(ts.Active, c.String())
			}
		}
		snap.Targets = append(snap.Targets, ts)
	}
	return snap
}

// EscalationRemediation returns an AlertFunc that auto-remediates livelock by
// clamping the starvation policy's escalation threshold to 1 while the alert
// is active (every contender serializes after its first abort, draining the
// livelock) and restoring the configured threshold on the all-clear. Attach
// it via Config.OnAlert alongside the policy the livelocked transactions run
// under.
func EscalationRemediation(p *stm.StarvationPolicy) AlertFunc {
	return func(a Alert) {
		if a.Cond != CondLivelock {
			return
		}
		if a.Raised {
			p.Clamp(1)
		} else {
			p.Clamp(0)
		}
	}
}
