package health

import (
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jvstm"
	"repro/internal/mvutil"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

// collect is a test AlertFunc capturing transitions.
type collect struct{ alerts []Alert }

func (c *collect) fn(a Alert) { c.alerts = append(c.alerts, a) }

func (c *collect) last() (Alert, bool) {
	if len(c.alerts) == 0 {
		return Alert{}, false
	}
	return c.alerts[len(c.alerts)-1], true
}

func TestTargetOf(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{HardVersions: 100})
	for _, tm := range []stm.TM{
		core.New(core.Options{Budget: b}),
		jvstm.New(jvstm.Options{Budget: b}),
	} {
		tgt := TargetOf(tm)
		if tgt.Name != tm.Name() || tgt.Stats == nil {
			t.Fatalf("%s: bad basic target %+v", tm.Name(), tgt)
		}
		if tgt.Clock == nil || tgt.Clock() == 0 {
			t.Errorf("%s: no clock capability", tm.Name())
		}
		if tgt.Active == nil {
			t.Errorf("%s: no active-set capability", tm.Name())
		}
		if tgt.Budget != b {
			t.Errorf("%s: budget not surfaced", tm.Name())
		}
	}
}

func TestWatchdogLivelock(t *testing.T) {
	var stats stm.Stats
	c := &collect{}
	w := New(Config{RaiseAfter: 2, ClearAfter: 2, MinAborts: 10, OnAlert: []AlertFunc{c.fn}},
		Target{Name: "t", Stats: &stats})

	abortStorm := func() {
		for i := 0; i < 20; i++ {
			stats.RecordStart()
			stats.RecordAbort(stm.ReasonReadConflict)
		}
	}
	abortStorm()
	w.Step()
	if w.Active("t", CondLivelock) {
		t.Fatal("raised after one bad window (RaiseAfter=2)")
	}
	abortStorm()
	w.Step()
	if !w.Active("t", CondLivelock) {
		t.Fatal("not raised after two bad windows")
	}
	if a, ok := c.last(); !ok || !a.Raised || a.Cond != CondLivelock || a.Target != "t" {
		t.Fatalf("bad raise alert %+v", c.alerts)
	}

	// Commits resume: two good windows clear it.
	stats.RecordStart()
	stats.RecordCommit(false)
	w.Step()
	if !w.Active("t", CondLivelock) {
		t.Fatal("cleared after one good window (ClearAfter=2)")
	}
	w.Step()
	if w.Active("t", CondLivelock) {
		t.Fatal("not cleared after two good windows")
	}
	if a, ok := c.last(); !ok || a.Raised || a.Cond != CondLivelock {
		t.Fatalf("bad clear alert %+v", c.alerts)
	}
}

func TestWatchdogHysteresisInterrupted(t *testing.T) {
	var stats stm.Stats
	w := New(Config{RaiseAfter: 3, MinAborts: 10}, Target{Name: "t", Stats: &stats})
	bad := func() {
		for i := 0; i < 10; i++ {
			stats.RecordAbort(stm.ReasonReadConflict)
		}
	}
	bad()
	w.Step()
	bad()
	w.Step()
	stats.RecordCommit(false) // good window resets the bad streak
	w.Step()
	bad()
	w.Step()
	bad()
	w.Step()
	if w.Active("t", CondLivelock) {
		t.Fatal("raised despite interrupted bad streak")
	}
}

func TestWatchdogClockStall(t *testing.T) {
	var stats stm.Stats
	w := New(Config{RaiseAfter: 2}, Target{Name: "t", Stats: &stats})
	for i := 0; i < 2; i++ {
		stats.RecordStart() // attempts enter, nothing ever finishes
		w.Step()
	}
	if !w.Active("t", CondClockStall) {
		t.Fatal("clock stall not raised")
	}
	// Finishing anything (even an abort) is progress.
	stats.RecordAbort(stm.ReasonUser)
	w.Step()
	w.Step()
	if w.Active("t", CondClockStall) {
		t.Fatal("clock stall not cleared")
	}
}

// TestWatchdogClockStallBatchedAdvance: a clocked target whose commit clock
// keeps moving is never a stall, even across windows that see starts but no
// finished transactions — exactly the window a group-commit leader produces
// between a batch's single clock advance and the member commits being
// recorded. A genuinely frozen clock still raises.
func TestWatchdogClockStallBatchedAdvance(t *testing.T) {
	var stats stm.Stats
	var clock atomic.Uint64
	clock.Store(1)
	w := New(Config{RaiseAfter: 2}, Target{Name: "t", Stats: &stats, Clock: clock.Load})

	// Batched commit stage alive: attempts start, counters lag, clock ticks.
	for i := 0; i < 4; i++ {
		stats.RecordStart()
		clock.Add(1)
		w.Step()
	}
	if w.Active("t", CondClockStall) {
		t.Fatal("stall raised while the commit clock was advancing")
	}

	// Genuine wedge: starts with a motionless clock and nothing finishing.
	for i := 0; i < 2; i++ {
		stats.RecordStart()
		w.Step()
	}
	if !w.Active("t", CondClockStall) {
		t.Fatal("genuine stall not raised on a clocked target")
	}

	// A batch lands: one tick, several commits; two good windows clear it.
	clock.Add(1)
	for i := 0; i < 3; i++ {
		stats.RecordCommit(false)
	}
	w.Step()
	w.Step()
	if w.Active("t", CondClockStall) {
		t.Fatal("stall not cleared after a batched advance landed")
	}
}

// TestWatchdogCommitsPerTick: the snapshot surfaces the last window's commits
// per clock tick — the watchdog-visible mean batch size.
func TestWatchdogCommitsPerTick(t *testing.T) {
	var stats stm.Stats
	var clock atomic.Uint64
	clock.Store(1)
	w := New(Config{}, Target{Name: "t", Stats: &stats, Clock: clock.Load})

	for i := 0; i < 8; i++ {
		stats.RecordStart()
		stats.RecordCommit(false)
	}
	clock.Add(2) // two batches carried eight commits
	w.Step()
	snap := w.Snapshot()
	if got := snap.Targets[0].CommitsPerTick; got != 4 {
		t.Fatalf("commits per tick = %v, want 4", got)
	}

	// A tickless window carries the previous figure rather than resetting it.
	w.Step()
	if got := w.Snapshot().Targets[0].CommitsPerTick; got != 4 {
		t.Fatalf("commits per tick after idle window = %v, want 4", got)
	}
}

func TestWatchdogStuckSnapshot(t *testing.T) {
	var stats stm.Stats
	active := mvutil.NewActiveSet()
	var clock atomic.Uint64
	clock.Store(1)
	w := New(Config{RaiseAfter: 2, StuckClockLag: 100, OnAlert: nil},
		Target{Name: "t", Stats: &stats, Clock: clock.Load, Active: active})

	var pinned mvutil.Slot
	active.Register(&pinned, 1)
	clock.Store(500) // snapshot now lags by 499 >= 100
	w.Step()
	w.Step()
	if !w.Active("t", CondStuck) {
		t.Fatal("stuck snapshot not raised")
	}
	active.Unregister(&pinned)
	w.Step()
	w.Step()
	if w.Active("t", CondStuck) {
		t.Fatal("stuck snapshot not cleared after unpin")
	}
}

func TestWatchdogBudget(t *testing.T) {
	var stats stm.Stats
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 5, HardVersions: 10})
	w := New(Config{RaiseAfter: 2}, Target{Name: "t", Stats: &stats, Budget: b})
	b.Install(11, 0)
	w.Step()
	w.Step()
	if !w.Active("t", CondBudget) {
		t.Fatal("budget pressure not raised")
	}
	snap := w.Snapshot()
	if len(snap.Targets) != 1 || snap.Targets[0].Budget == nil ||
		snap.Targets[0].Budget.Level != "hard" || len(snap.Targets[0].Active) == 0 {
		t.Fatalf("snapshot misses budget state: %+v", snap)
	}
	b.Release(8, 0)
	w.Step()
	w.Step()
	if w.Active("t", CondBudget) {
		t.Fatal("budget pressure not cleared")
	}
}

func TestSnapshotJSON(t *testing.T) {
	tm := core.New(core.Options{Budget: mvutil.NewVersionBudget(mvutil.BudgetConfig{HardVersions: 64})})
	v := stm.NewTVar(tm, 0)
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		v.Set(tx, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	w := New(Config{}, TargetOf(tm))
	w.Step()
	out, err := json.Marshal(w.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"twm"`, `"commits":1`, `"budget"`, `"clock"`} {
		if !containsStr(string(out), want) {
			t.Errorf("snapshot JSON missing %s: %s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWatchdogStartStopNoLeak(t *testing.T) {
	stmtest.CheckGoroutines(t)
	var stats stm.Stats
	w := New(Config{SampleEvery: time.Millisecond}, Target{Name: "t", Stats: &stats})
	w.Start()
	time.Sleep(10 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent
}

func TestWatchdogStopWithoutStart(t *testing.T) {
	w := New(Config{}, Target{Name: "t", Stats: new(stm.Stats)})
	w.Stop() // must not hang
}

func TestEscalationRemediation(t *testing.T) {
	p := stm.NewStarvationPolicy(8, nil)
	var stats stm.Stats
	w := New(Config{RaiseAfter: 1, ClearAfter: 1, MinAborts: 5,
		OnAlert: []AlertFunc{EscalationRemediation(p)}},
		Target{Name: "t", Stats: &stats})

	for i := 0; i < 5; i++ {
		stats.RecordAbort(stm.ReasonTriad)
	}
	w.Step()
	if got := p.Clamped(); got != 1 {
		t.Fatalf("Clamped = %d after livelock raise, want 1", got)
	}
	stats.RecordCommit(false)
	w.Step()
	if got := p.Clamped(); got != 0 {
		t.Fatalf("Clamped = %d after all-clear, want 0", got)
	}
}
