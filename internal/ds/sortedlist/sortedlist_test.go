package sortedlist_test

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/sortedlist"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func TestModelSequential(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			l := sortedlist.New(tm)
			model := map[int64]bool{}
			r := xrand.New(5)
			for i := 0; i < 500; i++ {
				k := int64(r.Intn(60))
				op := r.Intn(3)
				err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					switch op {
					case 0:
						if got, want := l.Insert(tx, k), !model[k]; got != want {
							t.Errorf("Insert(%d) = %v, want %v", k, got, want)
						}
					case 1:
						if got, want := l.Remove(tx, k), model[k]; got != want {
							t.Errorf("Remove(%d) = %v, want %v", k, got, want)
						}
					case 2:
						if got, want := l.Contains(tx, k), model[k]; got != want {
							t.Errorf("Contains(%d) = %v, want %v", k, got, want)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				switch op {
				case 0:
					model[k] = true
				case 1:
					delete(model, k)
				}
			}
			// Final structural check: sorted, deduplicated, matches model.
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				keys := l.Keys(tx)
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Errorf("keys not sorted: %v", keys)
				}
				if len(keys) != len(model) {
					t.Errorf("len = %d, model = %d", len(keys), len(model))
				}
				for _, k := range keys {
					if !model[k] {
						t.Errorf("stray key %d", k)
					}
				}
				if got := l.Len(tx); got != len(model) {
					t.Errorf("Len = %d, want %d", got, len(model))
				}
				return nil
			})
		})
	}
}

func TestInsertRemoveProperty(t *testing.T) {
	// Inserting a batch and removing it again always leaves the set empty.
	g := func(keys []int16) bool {
		tm := engines.MustNew("twm")
		l := sortedlist.New(tm)
		var empty bool
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, k := range keys {
				l.Insert(tx, int64(k))
			}
			for _, k := range keys {
				l.Remove(tx, int64(k))
			}
			empty = l.Len(tx) == 0
			return nil
		})
		return empty
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSetSemantics(t *testing.T) {
	// Each worker owns a disjoint key range; every insert must survive.
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			l := sortedlist.New(tm)
			const workers, perW = 4, 40
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(base int64) {
					defer wg.Done()
					for i := int64(0); i < perW; i++ {
						k := base + i
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							l.Insert(tx, k)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(w) * 1000)
			}
			wg.Wait()
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if got := l.Len(tx); got != workers*perW {
					t.Errorf("len = %d, want %d", got, workers*perW)
				}
				return nil
			})
		})
	}
}

func TestFig1ScenarioOnRealList(t *testing.T) {
	// The paper's Fig. 1 on the real structure: T3 removes near the tail
	// while T2 inserts near the head. TWM commits both; TL2 aborts T3.
	run := func(name string) (bothCommitted bool) {
		tm := engines.MustNew(name)
		l := sortedlist.New(tm)
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, k := range []int64{10, 40, 50} { // A, D, E
				l.Insert(tx, k)
			}
			return nil
		})
		t3 := tm.Begin(false)
		if !l.Remove(t3, 50) {
			return false
		}
		t2 := tm.Begin(false)
		if !l.Insert(t2, 20) {
			return false
		}
		if !tm.Commit(t2) {
			return false
		}
		return tm.Commit(t3)
	}
	if !run("twm") {
		t.Errorf("TWM should time-warp commit the Fig. 1 history")
	}
	if run("tl2") {
		t.Errorf("TL2 should abort the Fig. 1 history (classic validation)")
	}
	if run("jvstm") {
		t.Errorf("JVSTM should abort the Fig. 1 history (classic validation)")
	}
	if !run("avstm") {
		t.Errorf("AVSTM should accept the Fig. 1 history (interval commit)")
	}
}
