// Package sortedlist is a transactional sorted singly-linked integer set —
// the data structure of the paper's §1.1 motivating example (Fig. 1). A
// traversal reads every next pointer up to the insertion point, so an update
// near the tail conflicts (under classic validation) with any concurrent
// update nearer the head: exactly the spurious-abort pattern time-warp
// commits eliminate.
package sortedlist

import (
	"math"

	"repro/internal/stm"
)

// node is a list cell. The key is immutable; the next pointer is the
// transactional variable.
type node struct {
	key  int64
	next stm.Var // holds *node (nil tail is a (*node)(nil) value)
}

// List is a transactional sorted set of int64 keys.
type List struct {
	tm   stm.TM
	head *node // sentinel with key = -inf
}

// New returns an empty set bound to tm.
func New(tm stm.TM) *List {
	return &List{
		tm:   tm,
		head: &node{key: math.MinInt64, next: tm.NewVar((*node)(nil))},
	}
}

// nextOf dereferences a node's next pointer inside tx.
func nextOf(tx stm.Tx, n *node) *node {
	v := tx.Read(n.next)
	if v == nil {
		return nil
	}
	return v.(*node)
}

// search returns the last node with key < k and its successor.
func (l *List) search(tx stm.Tx, k int64) (prev, curr *node) {
	prev = l.head
	curr = nextOf(tx, prev)
	for curr != nil && curr.key < k {
		prev = curr
		curr = nextOf(tx, curr)
	}
	return prev, curr
}

// Contains reports whether k is in the set.
func (l *List) Contains(tx stm.Tx, k int64) bool {
	_, curr := l.search(tx, k)
	return curr != nil && curr.key == k
}

// Insert adds k and reports whether the set changed.
func (l *List) Insert(tx stm.Tx, k int64) bool {
	prev, curr := l.search(tx, k)
	if curr != nil && curr.key == k {
		return false
	}
	n := &node{key: k, next: l.tm.NewVar(stm.Value(curr))}
	tx.Write(prev.next, n)
	return true
}

// Remove deletes k and reports whether the set changed.
func (l *List) Remove(tx stm.Tx, k int64) bool {
	prev, curr := l.search(tx, k)
	if curr == nil || curr.key != k {
		return false
	}
	tx.Write(prev.next, nextOf(tx, curr))
	return true
}

// Len counts the elements (reads the whole list).
func (l *List) Len(tx stm.Tx) int {
	n := 0
	for curr := nextOf(tx, l.head); curr != nil; curr = nextOf(tx, curr) {
		n++
	}
	return n
}

// Keys returns the elements in order (reads the whole list).
func (l *List) Keys(tx stm.Tx) []int64 {
	var out []int64
	for curr := nextOf(tx, l.head); curr != nil; curr = nextOf(tx, curr) {
		out = append(out, curr.key)
	}
	return out
}
