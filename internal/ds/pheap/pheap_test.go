package pheap_test

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/pheap"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func TestHeapOrderSequential(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			h := pheap.New(tm)
			r := xrand.New(13)
			var want []int64
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				want = want[:0]
				for i := 0; i < 200; i++ {
					p := int64(r.Intn(1000))
					h.Insert(tx, p, p*10)
					want = append(want, p)
				}
				return nil
			})
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				if got := h.Len(tx); got != len(want) {
					t.Errorf("len = %d, want %d", got, len(want))
				}
				for i, w := range want {
					p, v, ok := h.DeleteMin(tx)
					if !ok || p != w {
						t.Errorf("delete %d: got %d,%v want %d", i, p, ok, w)
						break
					}
					if v.(int64) != p*10 {
						t.Errorf("payload mismatch at %d", i)
					}
				}
				if !h.Empty(tx) {
					t.Errorf("heap not empty after draining")
				}
				if _, _, ok := h.DeleteMin(tx); ok {
					t.Errorf("DeleteMin on empty succeeded")
				}
				return nil
			})
		})
	}
}

func TestMinPeek(t *testing.T) {
	tm := engines.MustNew("twm")
	h := pheap.New(tm)
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		if _, _, ok := h.Min(tx); ok {
			t.Errorf("Min on empty succeeded")
		}
		h.Insert(tx, 5, "five")
		h.Insert(tx, 2, "two")
		h.Insert(tx, 9, "nine")
		if p, v, ok := h.Min(tx); !ok || p != 2 || v != "two" {
			t.Errorf("Min = %d,%v,%v", p, v, ok)
		}
		if got := h.Len(tx); got != 3 {
			t.Errorf("peek must not remove: len %d", got)
		}
		return nil
	})
}

func TestDrainSortedProperty(t *testing.T) {
	f := func(prios []int16) bool {
		tm := engines.MustNew("tl2")
		h := pheap.New(tm)
		ok := true
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, p := range prios {
				h.Insert(tx, int64(p), nil)
			}
			last := int64(-1 << 30)
			for range prios {
				p, _, got := h.DeleteMin(tx)
				if !got || p < last {
					ok = false
					return nil
				}
				last = p
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	for _, name := range []string{"twm", "tl2", "norec"} {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			h := pheap.New(tm)
			const producers, perP = 3, 50
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(base int64) {
					defer wg.Done()
					for i := int64(0); i < perP; i++ {
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							h.Insert(tx, base+i, base+i)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(p) * 1000)
			}
			wg.Wait()
			seen := map[int64]bool{}
			for i := 0; i < producers*perP; i++ {
				var p int64
				var ok bool
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					p, _, ok = h.DeleteMin(tx)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if !ok || seen[p] {
					t.Fatalf("drain %d: ok=%v dup=%v p=%d", i, ok, seen[p], p)
				}
				seen[p] = true
			}
		})
	}
}
