// Package pheap is a transactional min-priority queue implemented as a
// pairing heap. Pairing heaps suit STM well: Insert and Min touch O(1)
// transactional variables and DeleteMin rebuilds only the root's child list,
// so concurrent producers conflict rarely while consumers serialize on the
// root — the contention profile of a shared scheduler or event queue.
package pheap

import "repro/internal/stm"

// node is a heap node: an immutable priority/payload pair with transactional
// child/sibling links (leftmost-child, right-sibling representation).
type node struct {
	prio    int64
	val     stm.Value
	child   stm.Var // *node
	sibling stm.Var // *node
}

// Heap is a transactional min-heap keyed by int64 priority.
type Heap struct {
	tm   stm.TM
	root stm.Var // *node
	size stm.Var // int
}

// New returns an empty heap bound to tm.
func New(tm stm.TM) *Heap {
	return &Heap{tm: tm, root: tm.NewVar((*node)(nil)), size: tm.NewVar(0)}
}

func deref(tx stm.Tx, v stm.Var) *node {
	val := tx.Read(v)
	if val == nil {
		return nil
	}
	return val.(*node)
}

// meld links two heaps, attaching the larger root under the smaller.
func (h *Heap) meld(tx stm.Tx, a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.prio < a.prio {
		a, b = b, a
	}
	// b becomes a's leftmost child.
	tx.Write(b.sibling, deref(tx, a.child))
	tx.Write(a.child, b)
	return a
}

// Insert adds val with the given priority.
func (h *Heap) Insert(tx stm.Tx, prio int64, val stm.Value) {
	n := &node{
		prio:    prio,
		val:     val,
		child:   h.tm.NewVar((*node)(nil)),
		sibling: h.tm.NewVar((*node)(nil)),
	}
	tx.Write(h.root, h.meld(tx, deref(tx, h.root), n))
	tx.Write(h.size, tx.Read(h.size).(int)+1)
}

// Min returns the smallest priority and its value without removing it.
func (h *Heap) Min(tx stm.Tx) (prio int64, val stm.Value, ok bool) {
	r := deref(tx, h.root)
	if r == nil {
		return 0, nil, false
	}
	return r.prio, r.val, true
}

// DeleteMin removes and returns the smallest element.
func (h *Heap) DeleteMin(tx stm.Tx) (prio int64, val stm.Value, ok bool) {
	r := deref(tx, h.root)
	if r == nil {
		return 0, nil, false
	}
	tx.Write(h.root, h.mergePairs(tx, deref(tx, r.child)))
	tx.Write(h.size, tx.Read(h.size).(int)-1)
	return r.prio, r.val, true
}

// mergePairs is the two-pass pairing combine over a sibling list.
func (h *Heap) mergePairs(tx stm.Tx, first *node) *node {
	if first == nil {
		return nil
	}
	second := deref(tx, first.sibling)
	if second == nil {
		return first
	}
	rest := deref(tx, second.sibling)
	tx.Write(first.sibling, (*node)(nil))
	tx.Write(second.sibling, (*node)(nil))
	return h.meld(tx, h.meld(tx, first, second), h.mergePairs(tx, rest))
}

// Len returns the element count.
func (h *Heap) Len(tx stm.Tx) int { return tx.Read(h.size).(int) }

// Empty reports whether the heap has no elements.
func (h *Heap) Empty(tx stm.Tx) bool { return h.Len(tx) == 0 }
