package treap_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/treap"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func TestModelSequential(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			m := treap.New(tm)
			model := map[int64]int{}
			r := xrand.New(23)
			for i := 0; i < 700; i++ {
				k := int64(r.Intn(100))
				switch r.Intn(4) {
				case 0, 1:
					err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						_, had := model[k]
						if got := m.Put(tx, k, i); got != !had {
							t.Errorf("Put(%d) inserted=%v, want %v", k, got, !had)
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					model[k] = i
				case 2:
					err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						_, had := model[k]
						if got := m.Delete(tx, k); got != had {
							t.Errorf("Delete(%d) = %v, want %v", k, got, had)
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				default:
					_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
						v, ok := m.Get(tx, k)
						want, had := model[k]
						if ok != had || (ok && v.(int) != want) {
							t.Errorf("Get(%d) = %v,%v want %v,%v", k, v, ok, want, had)
						}
						return nil
					})
				}
			}
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if got := m.Len(tx); got != len(model) {
					t.Errorf("Len = %d, model %d", got, len(model))
				}
				prev := int64(-1)
				m.ForEach(tx, func(k int64, v stm.Value) bool {
					if k <= prev {
						t.Errorf("ForEach out of order: %d after %d", k, prev)
					}
					prev = k
					if want := model[k]; v.(int) != want {
						t.Errorf("value mismatch at %d: %v vs %d", k, v, want)
					}
					return true
				})
				return nil
			})
		})
	}
}

func TestRangeFrom(t *testing.T) {
	tm := engines.MustNew("twm")
	m := treap.New(tm)
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		for _, k := range []int64{5, 1, 9, 3, 7, 11} {
			m.Put(tx, k, k*10)
		}
		return nil
	})
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		var got []int64
		m.RangeFrom(tx, 5, func(k int64, v stm.Value) bool {
			got = append(got, k)
			return len(got) < 3
		})
		want := []int64{5, 7, 9}
		if len(got) != len(want) {
			t.Fatalf("RangeFrom = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RangeFrom = %v, want %v", got, want)
			}
		}
		if min, ok := m.Min(tx); !ok || min != 1 {
			t.Fatalf("Min = %d,%v", min, ok)
		}
		return nil
	})
}

func TestTreapHeapInvariantViaBalance(t *testing.T) {
	// With key-derived priorities, building 2^k sequential keys must not
	// degenerate: Len is exact and lookups succeed, which requires the
	// rotations to have preserved the BST ordering.
	f := func(seed uint16) bool {
		tm := engines.MustNew("tl2")
		m := treap.New(tm)
		r := xrand.New(uint64(seed))
		keys := map[int64]bool{}
		ok := true
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for i := 0; i < 64; i++ {
				k := int64(r.Intn(512))
				m.Put(tx, k, k)
				keys[k] = true
			}
			for k := range keys {
				if v, found := m.Get(tx, k); !found || v.(int64) != k {
					ok = false
				}
			}
			return nil
		})
		return ok && func() bool {
			n := 0
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				n = m.Len(tx)
				return nil
			})
			return n == len(keys)
		}()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointPuts(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			m := treap.New(tm)
			const workers, perW = 4, 50
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						k := int64(w*perW + i)
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							m.Put(tx, k, int(k))
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if got := m.Len(tx); got != workers*perW {
					t.Errorf("len = %d, want %d", got, workers*perW)
				}
				for k := int64(0); k < workers*perW; k++ {
					if v, ok := m.Get(tx, k); !ok || v.(int) != int(k) {
						t.Errorf("Get(%d) = %v,%v", k, v, ok)
					}
				}
				return nil
			})
		})
	}
}
