// Package treap is a transactional ordered map from int64 keys to arbitrary
// values, implemented as a treap (randomized balanced BST with deterministic,
// key-derived priorities). It stands in for the red-black trees the STAMP
// vacation benchmark builds its reservation tables from: lookups and updates
// touch an O(log n) root-to-key path of transactional pointers, producing the
// same conflict structure (updates near the root invalidate concurrent
// readers of the whole subtree) at a fraction of the rebalancing complexity.
package treap

import "repro/internal/stm"

// node is a treap node. Key and priority are immutable; value and children
// are transactional.
type node struct {
	key   int64
	prio  uint64
	value stm.Var // payload
	left  stm.Var // *node
	right stm.Var // *node
}

// Map is a transactional ordered map.
type Map struct {
	tm   stm.TM
	root stm.Var // *node
}

// New returns an empty map bound to tm.
func New(tm stm.TM) *Map {
	return &Map{tm: tm, root: tm.NewVar((*node)(nil))}
}

// prioOf derives the (immutable) heap priority from the key.
func prioOf(k int64) uint64 {
	z := uint64(k) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func deref(tx stm.Tx, v stm.Var) *node {
	val := tx.Read(v)
	if val == nil {
		return nil
	}
	return val.(*node)
}

// Get returns the value stored at k.
func (m *Map) Get(tx stm.Tx, k int64) (stm.Value, bool) {
	n := deref(tx, m.root)
	for n != nil {
		switch {
		case k < n.key:
			n = deref(tx, n.left)
		case k > n.key:
			n = deref(tx, n.right)
		default:
			return tx.Read(n.value), true
		}
	}
	return nil, false
}

// Contains reports whether k is present.
func (m *Map) Contains(tx stm.Tx, k int64) bool {
	_, ok := m.Get(tx, k)
	return ok
}

// Put inserts or updates k and reports whether a new key was inserted.
func (m *Map) Put(tx stm.Tx, k int64, val stm.Value) bool {
	return m.insert(tx, m.root, k, val)
}

func (m *Map) insert(tx stm.Tx, slot stm.Var, k int64, val stm.Value) bool {
	n := deref(tx, slot)
	if n == nil {
		fresh := &node{
			key:   k,
			prio:  prioOf(k),
			value: m.tm.NewVar(val),
			left:  m.tm.NewVar((*node)(nil)),
			right: m.tm.NewVar((*node)(nil)),
		}
		tx.Write(slot, fresh)
		return true
	}
	switch {
	case k == n.key:
		tx.Write(n.value, val)
		return false
	case k < n.key:
		inserted := m.insert(tx, n.left, k, val)
		if child := deref(tx, n.left); child != nil && child.prio > n.prio {
			m.rotateRight(tx, slot, n, child)
		}
		return inserted
	default:
		inserted := m.insert(tx, n.right, k, val)
		if child := deref(tx, n.right); child != nil && child.prio > n.prio {
			m.rotateLeft(tx, slot, n, child)
		}
		return inserted
	}
}

// rotateRight lifts l (n's left child) above n.
func (m *Map) rotateRight(tx stm.Tx, slot stm.Var, n, l *node) {
	tx.Write(n.left, tx.Read(l.right))
	tx.Write(l.right, n)
	tx.Write(slot, l)
}

// rotateLeft lifts r (n's right child) above n.
func (m *Map) rotateLeft(tx stm.Tx, slot stm.Var, n, r *node) {
	tx.Write(n.right, tx.Read(r.left))
	tx.Write(r.left, n)
	tx.Write(slot, r)
}

// Delete removes k and reports whether it was present.
func (m *Map) Delete(tx stm.Tx, k int64) bool {
	return m.remove(tx, m.root, k)
}

func (m *Map) remove(tx stm.Tx, slot stm.Var, k int64) bool {
	n := deref(tx, slot)
	if n == nil {
		return false
	}
	switch {
	case k < n.key:
		return m.remove(tx, n.left, k)
	case k > n.key:
		return m.remove(tx, n.right, k)
	}
	// Found: rotate n down toward a leaf, then unlink it.
	l := deref(tx, n.left)
	r := deref(tx, n.right)
	switch {
	case l == nil:
		tx.Write(slot, r)
		return true
	case r == nil:
		tx.Write(slot, l)
		return true
	case l.prio > r.prio:
		m.rotateRight(tx, slot, n, l)
		return m.remove(tx, l.right, k)
	default:
		m.rotateLeft(tx, slot, n, r)
		return m.remove(tx, r.left, k)
	}
}

// Min returns the smallest key (used by table scans in vacation).
func (m *Map) Min(tx stm.Tx) (int64, bool) {
	n := deref(tx, m.root)
	if n == nil {
		return 0, false
	}
	for {
		l := deref(tx, n.left)
		if l == nil {
			return n.key, true
		}
		n = l
	}
}

// Len counts the entries (reads the whole tree).
func (m *Map) Len(tx stm.Tx) int {
	return m.count(tx, deref(tx, m.root))
}

func (m *Map) count(tx stm.Tx, n *node) int {
	if n == nil {
		return 0
	}
	return 1 + m.count(tx, deref(tx, n.left)) + m.count(tx, deref(tx, n.right))
}

// ForEach visits entries in ascending key order; fn returning false stops the
// walk.
func (m *Map) ForEach(tx stm.Tx, fn func(k int64, v stm.Value) bool) {
	m.walk(tx, deref(tx, m.root), fn)
}

func (m *Map) walk(tx stm.Tx, n *node, fn func(int64, stm.Value) bool) bool {
	if n == nil {
		return true
	}
	if !m.walk(tx, deref(tx, n.left), fn) {
		return false
	}
	if !fn(n.key, tx.Read(n.value)) {
		return false
	}
	return m.walk(tx, deref(tx, n.right), fn)
}

// RangeFrom visits entries with key >= k in ascending order until fn returns
// false (vacation's "find cheapest among the query range" scans).
func (m *Map) RangeFrom(tx stm.Tx, k int64, fn func(k int64, v stm.Value) bool) {
	m.rangeFrom(tx, deref(tx, m.root), k, fn)
}

func (m *Map) rangeFrom(tx stm.Tx, n *node, k int64, fn func(int64, stm.Value) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= k {
		if !m.rangeFrom(tx, deref(tx, n.left), k, fn) {
			return false
		}
		if !fn(n.key, tx.Read(n.value)) {
			return false
		}
	}
	return m.rangeFrom(tx, deref(tx, n.right), k, fn)
}
