package hashmap_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/hashmap"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func TestModelSequential(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			m := hashmap.New(tm, 32) // small capacity forces chains
			model := map[int64]string{}
			r := xrand.New(3)
			for i := 0; i < 600; i++ {
				k := int64(r.Intn(90))
				switch r.Intn(4) {
				case 0, 1:
					val := string(rune('a' + i%26))
					err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						_, had := model[k]
						if got := m.Put(tx, k, val); got != !had {
							t.Errorf("Put(%d) inserted=%v, want %v", k, got, !had)
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					model[k] = val
				case 2:
					err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						_, had := model[k]
						if got := m.Delete(tx, k); got != had {
							t.Errorf("Delete(%d) = %v, want %v", k, got, had)
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				default:
					_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
						v, ok := m.Get(tx, k)
						want, had := model[k]
						if ok != had || (ok && v.(string) != want) {
							t.Errorf("Get(%d) = %v,%v want %v,%v", k, v, ok, want, had)
						}
						return nil
					})
				}
			}
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if got := m.Len(tx); got != len(model) {
					t.Errorf("Len = %d, model %d", got, len(model))
				}
				count := 0
				m.ForEach(tx, func(k int64, v stm.Value) bool {
					count++
					if want, ok := model[k]; !ok || v.(string) != want {
						t.Errorf("ForEach stray entry %d=%v", k, v)
					}
					return true
				})
				if count != len(model) {
					t.Errorf("ForEach visited %d, want %d", count, len(model))
				}
				return nil
			})
		})
	}
}

func TestPutIfAbsent(t *testing.T) {
	tm := engines.MustNew("twm")
	m := hashmap.New(tm, 16)
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		if v, inserted := m.PutIfAbsent(tx, 1, "first"); !inserted || v != "first" {
			t.Errorf("first PutIfAbsent = %v,%v", v, inserted)
		}
		if v, inserted := m.PutIfAbsent(tx, 1, "second"); inserted || v != "first" {
			t.Errorf("second PutIfAbsent = %v,%v", v, inserted)
		}
		return nil
	})
}

func TestCapacityRounding(t *testing.T) {
	f := func(c uint8) bool {
		tm := engines.MustNew("norec")
		m := hashmap.New(tm, int(c))
		// Insert a handful of keys and find them all again.
		ok := true
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for k := int64(0); k < 20; k++ {
				m.Put(tx, k*7, k)
			}
			for k := int64(0); k < 20; k++ {
				if v, found := m.Get(tx, k*7); !found || v.(int64) != k {
					ok = false
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDedup(t *testing.T) {
	// All workers race to PutIfAbsent the same keys; exactly one insert per
	// key may win (the genome phase-1 invariant).
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			m := hashmap.New(tm, 64)
			const workers, keys = 4, 30
			var inserted [workers]int
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for k := int64(0); k < keys; k++ {
						var won bool
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							_, won = m.PutIfAbsent(tx, k, w)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
						if won {
							inserted[w]++
						}
					}
				}(w)
			}
			wg.Wait()
			total := 0
			for _, n := range inserted {
				total += n
			}
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if got := m.Len(tx); got != keys {
					t.Errorf("len = %d, want %d", got, keys)
				}
				return nil
			})
			if total != keys {
				t.Errorf("insert wins = %d, want exactly %d", total, keys)
			}
		})
	}
}
