// Package hashmap is a transactional chained hash map from int64 keys to
// arbitrary values with a fixed bucket array. Each bucket holds an immutable
// entry chain behind one transactional variable, so a lookup reads exactly
// one Var and an update conflicts only with operations on the same bucket —
// the access pattern of the STAMP genome/intruder/vacation hash tables.
package hashmap

import "repro/internal/stm"

// entry is an immutable chain cell; updates rebuild the affected prefix.
type entry struct {
	key  int64
	val  stm.Value
	next *entry
}

// Map is a transactional hash map.
type Map struct {
	tm      stm.TM
	buckets []stm.Var // each holds *entry
	mask    uint64
}

// New returns a map with capacity rounded up to a power of two (minimum 16).
// Choose capacity near the expected element count to keep chains short.
func New(tm stm.TM, capacity int) *Map {
	n := 16
	for n < capacity {
		n <<= 1
	}
	m := &Map{tm: tm, buckets: make([]stm.Var, n), mask: uint64(n - 1)}
	for i := range m.buckets {
		m.buckets[i] = tm.NewVar((*entry)(nil))
	}
	return m
}

func (m *Map) bucket(k int64) stm.Var {
	z := uint64(k) * 0x9E3779B97F4A7C15
	z ^= z >> 32
	return m.buckets[z&m.mask]
}

func chainOf(tx stm.Tx, v stm.Var) *entry {
	val := tx.Read(v)
	if val == nil {
		return nil
	}
	return val.(*entry)
}

// Get returns the value stored at k.
func (m *Map) Get(tx stm.Tx, k int64) (stm.Value, bool) {
	for e := chainOf(tx, m.bucket(k)); e != nil; e = e.next {
		if e.key == k {
			return e.val, true
		}
	}
	return nil, false
}

// Contains reports whether k is present.
func (m *Map) Contains(tx stm.Tx, k int64) bool {
	_, ok := m.Get(tx, k)
	return ok
}

// Put inserts or updates k and reports whether a new key was inserted.
func (m *Map) Put(tx stm.Tx, k int64, val stm.Value) bool {
	b := m.bucket(k)
	head := chainOf(tx, b)
	for e := head; e != nil; e = e.next {
		if e.key == k {
			tx.Write(b, replace(head, e, &entry{key: k, val: val, next: e.next}))
			return false
		}
	}
	tx.Write(b, &entry{key: k, val: val, next: head})
	return true
}

// PutIfAbsent inserts k only if missing, returning the resident value and
// whether an insert happened (the genome segment-dedup primitive).
func (m *Map) PutIfAbsent(tx stm.Tx, k int64, val stm.Value) (stm.Value, bool) {
	b := m.bucket(k)
	head := chainOf(tx, b)
	for e := head; e != nil; e = e.next {
		if e.key == k {
			return e.val, false
		}
	}
	tx.Write(b, &entry{key: k, val: val, next: head})
	return val, true
}

// Delete removes k and reports whether it was present.
func (m *Map) Delete(tx stm.Tx, k int64) bool {
	b := m.bucket(k)
	head := chainOf(tx, b)
	for e := head; e != nil; e = e.next {
		if e.key == k {
			tx.Write(b, replace(head, e, e.next))
			return true
		}
	}
	return false
}

// replace rebuilds the chain prefix up to victim, splicing in repl (which may
// be victim's successor for deletion).
func replace(head, victim, repl *entry) *entry {
	if head == victim {
		return repl
	}
	return &entry{key: head.key, val: head.val, next: replace(head.next, victim, repl)}
}

// Len counts entries (reads every bucket).
func (m *Map) Len(tx stm.Tx) int {
	n := 0
	for _, b := range m.buckets {
		for e := chainOf(tx, b); e != nil; e = e.next {
			n++
		}
	}
	return n
}

// ForEach visits all entries in unspecified order; fn returning false stops.
func (m *Map) ForEach(tx stm.Tx, fn func(k int64, v stm.Value) bool) {
	for _, b := range m.buckets {
		for e := chainOf(tx, b); e != nil; e = e.next {
			if !fn(e.key, e.val) {
				return
			}
		}
	}
}
