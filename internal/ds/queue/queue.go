// Package queue is a transactional FIFO queue (sentinel-based linked list),
// used by the intruder benchmark to hand packets between pipeline stages.
package queue

import "repro/internal/stm"

// node is a queue cell; the payload is immutable, the next pointer
// transactional.
type node struct {
	val  stm.Value
	next stm.Var // *node
}

// Queue is a transactional FIFO of arbitrary values.
type Queue struct {
	tm   stm.TM
	head stm.Var // *node: sentinel whose successor is the front
	tail stm.Var // *node: last node (== sentinel when empty)
}

// New returns an empty queue bound to tm.
func New(tm stm.TM) *Queue {
	sentinel := &node{next: tm.NewVar((*node)(nil))}
	return &Queue{
		tm:   tm,
		head: tm.NewVar(sentinel),
		tail: tm.NewVar(sentinel),
	}
}

func deref(tx stm.Tx, v stm.Var) *node {
	val := tx.Read(v)
	if val == nil {
		return nil
	}
	return val.(*node)
}

// Enqueue appends val.
func (q *Queue) Enqueue(tx stm.Tx, val stm.Value) {
	n := &node{val: val, next: q.tm.NewVar((*node)(nil))}
	t := deref(tx, q.tail)
	tx.Write(t.next, n)
	tx.Write(q.tail, n)
}

// Dequeue removes and returns the front value; ok is false when empty.
func (q *Queue) Dequeue(tx stm.Tx) (val stm.Value, ok bool) {
	sentinel := deref(tx, q.head)
	first := deref(tx, sentinel.next)
	if first == nil {
		return nil, false
	}
	// The dequeued node becomes the new sentinel (its payload is dropped so
	// the value is not retained).
	tx.Write(q.head, first)
	return first.val, true
}

// Peek returns the front value without removing it.
func (q *Queue) Peek(tx stm.Tx) (val stm.Value, ok bool) {
	sentinel := deref(tx, q.head)
	first := deref(tx, sentinel.next)
	if first == nil {
		return nil, false
	}
	return first.val, true
}

// Empty reports whether the queue has no elements.
func (q *Queue) Empty(tx stm.Tx) bool {
	_, ok := q.Peek(tx)
	return !ok
}

// Len counts the elements (reads the whole queue).
func (q *Queue) Len(tx stm.Tx) int {
	n := 0
	for curr := deref(tx, deref(tx, q.head).next); curr != nil; curr = deref(tx, curr.next) {
		n++
	}
	return n
}
