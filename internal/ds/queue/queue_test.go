package queue_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/queue"
	"repro/internal/engines"
	"repro/internal/stm"
)

func TestFIFOOrder(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			q := queue.New(tm)
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				if !q.Empty(tx) {
					t.Errorf("new queue not empty")
				}
				for i := 0; i < 10; i++ {
					q.Enqueue(tx, i)
				}
				if got := q.Len(tx); got != 10 {
					t.Errorf("len = %d", got)
				}
				if v, ok := q.Peek(tx); !ok || v.(int) != 0 {
					t.Errorf("peek = %v,%v", v, ok)
				}
				for i := 0; i < 10; i++ {
					v, ok := q.Dequeue(tx)
					if !ok || v.(int) != i {
						t.Errorf("dequeue %d = %v,%v", i, v, ok)
					}
				}
				if _, ok := q.Dequeue(tx); ok {
					t.Errorf("dequeue from empty succeeded")
				}
				return nil
			})
		})
	}
}

func TestInterleavedProperty(t *testing.T) {
	// Any interleaving of enqueues and dequeues preserves FIFO order of the
	// surviving elements.
	f := func(ops []uint8) bool {
		tm := engines.MustNew("twm")
		q := queue.New(tm)
		var model []int
		next := 0
		ok := true
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, op := range ops {
				if op%3 != 0 {
					q.Enqueue(tx, next)
					model = append(model, next)
					next++
				} else {
					v, got := q.Dequeue(tx)
					if len(model) == 0 {
						if got {
							ok = false
						}
					} else {
						if !got || v.(int) != model[0] {
							ok = false
						}
						model = model[1:]
					}
				}
			}
			if q.Len(tx) != len(model) {
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			q := queue.New(tm)
			const producers, perP = 3, 60
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perP; i++ {
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							q.Enqueue(tx, p*perP+i)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(p)
			}
			seen := make(chan int, producers*perP)
			var cg sync.WaitGroup
			for c := 0; c < 2; c++ {
				cg.Add(1)
				go func() {
					defer cg.Done()
					for {
						var v stm.Value
						var ok bool
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							v, ok = q.Dequeue(tx)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
						if !ok {
							// Producers may still be running; stop only when
							// all items have been drained.
							if len(seen) == producers*perP {
								return
							}
							continue
						}
						seen <- v.(int)
					}
				}()
			}
			wg.Wait()
			cg.Wait()
			close(seen)
			got := map[int]bool{}
			for v := range seen {
				if got[v] {
					t.Errorf("duplicate element %d", v)
				}
				got[v] = true
			}
			if len(got) != producers*perP {
				t.Errorf("drained %d, want %d", len(got), producers*perP)
			}
		})
	}
}
