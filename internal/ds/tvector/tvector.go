// Package tvector is a transactional fixed-capacity vector: a cell array of
// transactional variables plus a transactional length. SSCA2 builds its
// adjacency lists from these (concurrent appends conflict only on the length
// and the written cell), and labyrinth records paths in them.
package tvector

import (
	"fmt"

	"repro/internal/stm"
)

// Vector is a transactional vector of arbitrary values.
type Vector struct {
	cells  []stm.Var
	length stm.Var // int
}

// New returns an empty vector with the given fixed capacity.
func New(tm stm.TM, capacity int) *Vector {
	v := &Vector{cells: make([]stm.Var, capacity), length: tm.NewVar(0)}
	for i := range v.cells {
		v.cells[i] = tm.NewVar(stm.Value(nil))
	}
	return v
}

// Cap returns the fixed capacity.
func (v *Vector) Cap() int { return len(v.cells) }

// Len returns the current length.
func (v *Vector) Len(tx stm.Tx) int { return tx.Read(v.length).(int) }

// Push appends val, reporting false when the vector is full.
func (v *Vector) Push(tx stm.Tx, val stm.Value) bool {
	n := v.Len(tx)
	if n >= len(v.cells) {
		return false
	}
	tx.Write(v.cells[n], val)
	tx.Write(v.length, n+1)
	return true
}

// Pop removes and returns the last element.
func (v *Vector) Pop(tx stm.Tx) (stm.Value, bool) {
	n := v.Len(tx)
	if n == 0 {
		return nil, false
	}
	val := tx.Read(v.cells[n-1])
	tx.Write(v.length, n-1)
	return val, true
}

// Get returns element i; it panics on out-of-range indexes (a programming
// error, matching slice semantics).
func (v *Vector) Get(tx stm.Tx, i int) stm.Value {
	if i < 0 || i >= v.Len(tx) {
		panic(fmt.Sprintf("tvector: index %d out of range [0,%d)", i, v.Len(tx)))
	}
	return tx.Read(v.cells[i])
}

// Set replaces element i.
func (v *Vector) Set(tx stm.Tx, i int, val stm.Value) {
	if i < 0 || i >= v.Len(tx) {
		panic(fmt.Sprintf("tvector: index %d out of range [0,%d)", i, v.Len(tx)))
	}
	tx.Write(v.cells[i], val)
}

// Clear resets the length to zero (cells are lazily overwritten).
func (v *Vector) Clear(tx stm.Tx) { tx.Write(v.length, 0) }
