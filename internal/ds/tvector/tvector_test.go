package tvector_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/tvector"
	"repro/internal/engines"
	"repro/internal/stm"
)

func TestPushPopGetSet(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			v := tvector.New(tm, 8)
			if v.Cap() != 8 {
				t.Fatalf("cap = %d", v.Cap())
			}
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				for i := 0; i < 8; i++ {
					if !v.Push(tx, i*i) {
						t.Errorf("push %d failed", i)
					}
				}
				if v.Push(tx, 99) {
					t.Errorf("push beyond capacity succeeded")
				}
				if got := v.Len(tx); got != 8 {
					t.Errorf("len = %d", got)
				}
				if got := v.Get(tx, 3); got.(int) != 9 {
					t.Errorf("get(3) = %v", got)
				}
				v.Set(tx, 3, -1)
				if got := v.Get(tx, 3); got.(int) != -1 {
					t.Errorf("set/get = %v", got)
				}
				if val, ok := v.Pop(tx); !ok || val.(int) != 49 {
					t.Errorf("pop = %v,%v", val, ok)
				}
				if got := v.Len(tx); got != 7 {
					t.Errorf("len after pop = %d", got)
				}
				v.Clear(tx)
				if got := v.Len(tx); got != 0 {
					t.Errorf("len after clear = %d", got)
				}
				if _, ok := v.Pop(tx); ok {
					t.Errorf("pop from empty succeeded")
				}
				return nil
			})
		})
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tm := engines.MustNew("twm")
	v := tvector.New(tm, 4)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		v.Get(tx, 0) // length is 0
		return nil
	})
}

func TestPushPopSymmetryProperty(t *testing.T) {
	f := func(vals []int8) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		tm := engines.MustNew("jvstm")
		v := tvector.New(tm, 64)
		ok := true
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, x := range vals {
				v.Push(tx, x)
			}
			for i := len(vals) - 1; i >= 0; i-- {
				got, has := v.Pop(tx)
				if !has || got.(int8) != vals[i] {
					ok = false
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	// Concurrent pushes serialize on the length variable: every slot filled
	// exactly once (the SSCA2 adjacency-append pattern).
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			v := tvector.New(tm, 128)
			const workers, perW = 4, 32
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							if !v.Push(tx, w*1000+i) {
								t.Errorf("push failed (capacity)")
							}
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if got := v.Len(tx); got != workers*perW {
					t.Errorf("len = %d, want %d", got, workers*perW)
				}
				seen := map[int]bool{}
				for i := 0; i < v.Len(tx); i++ {
					x := v.Get(tx, i).(int)
					if seen[x] {
						t.Errorf("duplicate element %d", x)
					}
					seen[x] = true
				}
				return nil
			})
		})
	}
}
