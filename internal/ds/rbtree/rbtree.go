// Package rbtree is a transactional red-black tree mapping int64 keys to
// arbitrary values — the data structure the original STAMP vacation builds
// its reservation tables from (this repository's vacation port uses the
// lighter treap; the red-black tree is provided as the faithful alternative
// and is compared against the treap in the ablation benchmarks).
//
// Every mutable field (color, value, child and parent links) is a
// transactional variable, so lookups read a root-to-key path and structural
// updates conflict exactly where a concurrent traversal passed. The
// algorithms are the classical CLRS insert/delete with parent pointers,
// formulated nil-safely (no shared sentinel node: a sentinel's parent field
// is written during fixups, which would make unrelated transactions conflict
// through it).
package rbtree

import "repro/internal/stm"

// Colors.
const (
	red   = true
	black = false
)

// node is a tree node; the key is immutable, everything else transactional.
type node struct {
	key    int64
	value  stm.Var // payload
	color  stm.Var // bool
	left   stm.Var // *node
	right  stm.Var // *node
	parent stm.Var // *node
}

// Map is a transactional ordered map backed by a red-black tree.
type Map struct {
	tm   stm.TM
	root stm.Var // *node
}

// New returns an empty map bound to tm.
func New(tm stm.TM) *Map {
	return &Map{tm: tm, root: tm.NewVar((*node)(nil))}
}

func (m *Map) newNode(k int64, val stm.Value) *node {
	return &node{
		key:    k,
		value:  m.tm.NewVar(val),
		color:  m.tm.NewVar(red),
		left:   m.tm.NewVar((*node)(nil)),
		right:  m.tm.NewVar((*node)(nil)),
		parent: m.tm.NewVar((*node)(nil)),
	}
}

func deref(tx stm.Tx, v stm.Var) *node {
	val := tx.Read(v)
	if val == nil {
		return nil
	}
	return val.(*node)
}

func isRed(tx stm.Tx, n *node) bool {
	return n != nil && tx.Read(n.color).(bool)
}

// Get returns the value stored at k.
func (m *Map) Get(tx stm.Tx, k int64) (stm.Value, bool) {
	n := deref(tx, m.root)
	for n != nil {
		switch {
		case k < n.key:
			n = deref(tx, n.left)
		case k > n.key:
			n = deref(tx, n.right)
		default:
			return tx.Read(n.value), true
		}
	}
	return nil, false
}

// Contains reports whether k is present.
func (m *Map) Contains(tx stm.Tx, k int64) bool {
	_, ok := m.Get(tx, k)
	return ok
}

// setChild links child into parent's side slot (or the root) and maintains
// the parent pointer.
func (m *Map) setChild(tx stm.Tx, parent *node, leftSide bool, child *node) {
	switch {
	case parent == nil:
		tx.Write(m.root, child)
	case leftSide:
		tx.Write(parent.left, child)
	default:
		tx.Write(parent.right, child)
	}
	if child != nil {
		tx.Write(child.parent, parent)
	}
}

// replaceChild rewires parent's link from old to repl (root-aware).
func (m *Map) replaceChild(tx stm.Tx, parent, old, repl *node) {
	if parent == nil {
		tx.Write(m.root, repl)
	} else if deref(tx, parent.left) == old {
		tx.Write(parent.left, repl)
	} else {
		tx.Write(parent.right, repl)
	}
	if repl != nil {
		tx.Write(repl.parent, parent)
	}
}

// rotateLeft lifts x's right child above x.
func (m *Map) rotateLeft(tx stm.Tx, x *node) {
	y := deref(tx, x.right)
	yl := deref(tx, y.left)
	tx.Write(x.right, yl)
	if yl != nil {
		tx.Write(yl.parent, x)
	}
	p := deref(tx, x.parent)
	m.replaceChild(tx, p, x, y)
	tx.Write(y.left, x)
	tx.Write(x.parent, y)
}

// rotateRight lifts x's left child above x.
func (m *Map) rotateRight(tx stm.Tx, x *node) {
	y := deref(tx, x.left)
	yr := deref(tx, y.right)
	tx.Write(x.left, yr)
	if yr != nil {
		tx.Write(yr.parent, x)
	}
	p := deref(tx, x.parent)
	m.replaceChild(tx, p, x, y)
	tx.Write(y.right, x)
	tx.Write(x.parent, y)
}

// Put inserts or updates k and reports whether a new key was inserted.
func (m *Map) Put(tx stm.Tx, k int64, val stm.Value) bool {
	var parent *node
	leftSide := false
	n := deref(tx, m.root)
	for n != nil {
		switch {
		case k < n.key:
			parent, leftSide, n = n, true, deref(tx, n.left)
		case k > n.key:
			parent, leftSide, n = n, false, deref(tx, n.right)
		default:
			tx.Write(n.value, val)
			return false
		}
	}
	fresh := m.newNode(k, val)
	m.setChild(tx, parent, leftSide, fresh)
	m.insertFixup(tx, fresh)
	return true
}

// insertFixup restores the red-black invariants after inserting z (CLRS
// 13.3, nil-safe).
func (m *Map) insertFixup(tx stm.Tx, z *node) {
	for {
		p := deref(tx, z.parent)
		if p == nil || !isRed(tx, p) {
			break
		}
		g := deref(tx, p.parent) // grandparent exists: p is red, so not root
		if deref(tx, g.left) == p {
			u := deref(tx, g.right)
			if isRed(tx, u) {
				tx.Write(p.color, black)
				tx.Write(u.color, black)
				tx.Write(g.color, red)
				z = g
				continue
			}
			if deref(tx, p.right) == z {
				z = p
				m.rotateLeft(tx, z)
				p = deref(tx, z.parent)
				g = deref(tx, p.parent)
			}
			tx.Write(p.color, black)
			tx.Write(g.color, red)
			m.rotateRight(tx, g)
		} else {
			u := deref(tx, g.left)
			if isRed(tx, u) {
				tx.Write(p.color, black)
				tx.Write(u.color, black)
				tx.Write(g.color, red)
				z = g
				continue
			}
			if deref(tx, p.left) == z {
				z = p
				m.rotateRight(tx, z)
				p = deref(tx, z.parent)
				g = deref(tx, p.parent)
			}
			tx.Write(p.color, black)
			tx.Write(g.color, red)
			m.rotateLeft(tx, g)
		}
	}
	root := deref(tx, m.root)
	if isRed(tx, root) {
		tx.Write(root.color, black)
	}
}

// Delete removes k and reports whether it was present.
func (m *Map) Delete(tx stm.Tx, k int64) bool {
	z := deref(tx, m.root)
	for z != nil && z.key != k {
		if k < z.key {
			z = deref(tx, z.left)
		} else {
			z = deref(tx, z.right)
		}
	}
	if z == nil {
		return false
	}

	// y is the node physically unlinked; x (possibly nil) takes its place,
	// xParent is x's parent after the transplant.
	y := z
	yWasBlack := !isRed(tx, y)
	var x, xParent *node

	switch {
	case deref(tx, z.left) == nil:
		x = deref(tx, z.right)
		xParent = deref(tx, z.parent)
		m.replaceChild(tx, xParent, z, x)
	case deref(tx, z.right) == nil:
		x = deref(tx, z.left)
		xParent = deref(tx, z.parent)
		m.replaceChild(tx, xParent, z, x)
	default:
		// Successor y = min of right subtree replaces z.
		y = deref(tx, z.right)
		for l := deref(tx, y.left); l != nil; l = deref(tx, y.left) {
			y = l
		}
		yWasBlack = !isRed(tx, y)
		x = deref(tx, y.right)
		if deref(tx, y.parent) == z {
			xParent = y
		} else {
			xParent = deref(tx, y.parent)
			m.replaceChild(tx, xParent, y, x)
			tx.Write(y.right, deref(tx, z.right))
			tx.Write(deref(tx, z.right).parent, y)
		}
		m.replaceChild(tx, deref(tx, z.parent), z, y)
		tx.Write(y.left, deref(tx, z.left))
		tx.Write(deref(tx, z.left).parent, y)
		tx.Write(y.color, tx.Read(z.color))
	}

	if yWasBlack {
		m.deleteFixup(tx, x, xParent)
	}
	return true
}

// deleteFixup restores the invariants after removing a black node (CLRS
// 13.4 with explicit (x, xParent) threading so x may be nil).
func (m *Map) deleteFixup(tx stm.Tx, x, xParent *node) {
	for xParent != nil && !isRed(tx, x) {
		if deref(tx, xParent.left) == x {
			w := deref(tx, xParent.right) // sibling; non-nil (black heights)
			if isRed(tx, w) {
				tx.Write(w.color, black)
				tx.Write(xParent.color, red)
				m.rotateLeft(tx, xParent)
				w = deref(tx, xParent.right)
			}
			if !isRed(tx, deref(tx, w.left)) && !isRed(tx, deref(tx, w.right)) {
				tx.Write(w.color, red)
				x = xParent
				xParent = deref(tx, x.parent)
				continue
			}
			if !isRed(tx, deref(tx, w.right)) {
				if wl := deref(tx, w.left); wl != nil {
					tx.Write(wl.color, black)
				}
				tx.Write(w.color, red)
				m.rotateRight(tx, w)
				w = deref(tx, xParent.right)
			}
			tx.Write(w.color, tx.Read(xParent.color))
			tx.Write(xParent.color, black)
			if wr := deref(tx, w.right); wr != nil {
				tx.Write(wr.color, black)
			}
			m.rotateLeft(tx, xParent)
			break
		}
		w := deref(tx, xParent.left)
		if isRed(tx, w) {
			tx.Write(w.color, black)
			tx.Write(xParent.color, red)
			m.rotateRight(tx, xParent)
			w = deref(tx, xParent.left)
		}
		if !isRed(tx, deref(tx, w.right)) && !isRed(tx, deref(tx, w.left)) {
			tx.Write(w.color, red)
			x = xParent
			xParent = deref(tx, x.parent)
			continue
		}
		if !isRed(tx, deref(tx, w.left)) {
			if wr := deref(tx, w.right); wr != nil {
				tx.Write(wr.color, black)
			}
			tx.Write(w.color, red)
			m.rotateLeft(tx, w)
			w = deref(tx, xParent.left)
		}
		tx.Write(w.color, tx.Read(xParent.color))
		tx.Write(xParent.color, black)
		if wl := deref(tx, w.left); wl != nil {
			tx.Write(wl.color, black)
		}
		m.rotateRight(tx, xParent)
		break
	}
	if x != nil && isRed(tx, x) {
		tx.Write(x.color, black)
	}
}

// Len counts the entries (reads the whole tree).
func (m *Map) Len(tx stm.Tx) int {
	return m.count(tx, deref(tx, m.root))
}

func (m *Map) count(tx stm.Tx, n *node) int {
	if n == nil {
		return 0
	}
	return 1 + m.count(tx, deref(tx, n.left)) + m.count(tx, deref(tx, n.right))
}

// Min returns the smallest key.
func (m *Map) Min(tx stm.Tx) (int64, bool) {
	n := deref(tx, m.root)
	if n == nil {
		return 0, false
	}
	for l := deref(tx, n.left); l != nil; l = deref(tx, n.left) {
		n = l
	}
	return n.key, true
}

// ForEach visits entries in ascending key order; fn returning false stops.
func (m *Map) ForEach(tx stm.Tx, fn func(k int64, v stm.Value) bool) {
	m.walk(tx, deref(tx, m.root), fn)
}

func (m *Map) walk(tx stm.Tx, n *node, fn func(int64, stm.Value) bool) bool {
	if n == nil {
		return true
	}
	if !m.walk(tx, deref(tx, n.left), fn) {
		return false
	}
	if !fn(n.key, tx.Read(n.value)) {
		return false
	}
	return m.walk(tx, deref(tx, n.right), fn)
}

// CheckInvariants verifies the red-black properties inside tx, returning the
// tree's black height. Exposed for tests.
func (m *Map) CheckInvariants(tx stm.Tx) (blackHeight int, err error) {
	root := deref(tx, m.root)
	if isRed(tx, root) {
		return 0, errRootRed
	}
	return m.check(tx, root, nil)
}

type rbError string

func (e rbError) Error() string { return string(e) }

const (
	errRootRed    = rbError("rbtree: root is red")
	errRedRed     = rbError("rbtree: red node with red child")
	errBlackDepth = rbError("rbtree: unequal black heights")
	errOrder      = rbError("rbtree: BST order violated")
	errParentLink = rbError("rbtree: bad parent link")
)

func (m *Map) check(tx stm.Tx, n, parent *node) (int, error) {
	if n == nil {
		return 1, nil
	}
	if deref(tx, n.parent) != parent {
		return 0, errParentLink
	}
	l := deref(tx, n.left)
	r := deref(tx, n.right)
	if l != nil && l.key >= n.key || r != nil && r.key <= n.key {
		return 0, errOrder
	}
	if isRed(tx, n) && (isRed(tx, l) || isRed(tx, r)) {
		return 0, errRedRed
	}
	lh, err := m.check(tx, l, n)
	if err != nil {
		return 0, err
	}
	rh, err := m.check(tx, r, n)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackDepth
	}
	if !isRed(tx, n) {
		lh++
	}
	return lh, nil
}
