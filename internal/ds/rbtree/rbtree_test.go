package rbtree_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/rbtree"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// checkedOp runs one mutation and verifies the red-black invariants inside
// the same transaction.
func checkedOp(t *testing.T, tm stm.TM, m *rbtree.Map, op func(tx stm.Tx)) {
	t.Helper()
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		op(tx)
		if _, err := m.CheckInvariants(tx); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestModelSequentialWithInvariants(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			m := rbtree.New(tm)
			model := map[int64]int{}
			r := xrand.New(31)
			for i := 0; i < 600; i++ {
				k := int64(r.Intn(120))
				switch r.Intn(4) {
				case 0, 1:
					checkedOp(t, tm, m, func(tx stm.Tx) {
						_, had := model[k]
						if got := m.Put(tx, k, i); got != !had {
							t.Errorf("Put(%d) inserted=%v, want %v", k, got, !had)
						}
					})
					model[k] = i
				case 2:
					checkedOp(t, tm, m, func(tx stm.Tx) {
						_, had := model[k]
						if got := m.Delete(tx, k); got != had {
							t.Errorf("Delete(%d) = %v, want %v", k, got, had)
						}
					})
					delete(model, k)
				default:
					_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
						v, ok := m.Get(tx, k)
						want, had := model[k]
						if ok != had || (ok && v.(int) != want) {
							t.Errorf("Get(%d) = %v,%v want %v,%v", k, v, ok, want, had)
						}
						return nil
					})
				}
			}
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if got := m.Len(tx); got != len(model) {
					t.Errorf("Len = %d, model %d", got, len(model))
				}
				prev := int64(-1)
				m.ForEach(tx, func(k int64, v stm.Value) bool {
					if k <= prev {
						t.Errorf("out of order: %d after %d", k, prev)
					}
					prev = k
					return true
				})
				return nil
			})
		})
	}
}

func TestInsertDeleteBatchProperty(t *testing.T) {
	f := func(keys []int16, delMask []bool) bool {
		tm := engines.MustNew("twm")
		m := rbtree.New(tm)
		ok := true
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			present := map[int64]bool{}
			for _, k := range keys {
				m.Put(tx, int64(k), k)
				present[int64(k)] = true
			}
			for i, k := range keys {
				if i < len(delMask) && delMask[i] {
					m.Delete(tx, int64(k))
					delete(present, int64(k))
				}
			}
			if _, err := m.CheckInvariants(tx); err != nil {
				ok = false
				return nil
			}
			if m.Len(tx) != len(present) {
				ok = false
			}
			for k := range present {
				if !m.Contains(tx, k) {
					ok = false
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAscendingDescendingInserts(t *testing.T) {
	// Worst-case insertion orders must stay balanced: black height of a
	// 2^k-node red-black tree is at most 2*log2(n+1).
	tm := engines.MustNew("tl2")
	m := rbtree.New(tm)
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		for k := int64(0); k < 256; k++ {
			m.Put(tx, k, k)
		}
		for k := int64(512); k > 256; k-- {
			m.Put(tx, k, k)
		}
		bh, err := m.CheckInvariants(tx)
		if err != nil {
			return err
		}
		if bh > 10 {
			t.Errorf("black height %d too large for 512 nodes", bh)
		}
		if min, ok := m.Min(tx); !ok || min != 0 {
			t.Errorf("Min = %d,%v", min, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			m := rbtree.New(tm)
			const workers = 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := xrand.New(uint64(w + 1))
					for i := 0; i < 150; i++ {
						k := int64(r.Intn(200))
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							if r.Bool(0.6) {
								m.Put(tx, k, w)
							} else {
								m.Delete(tx, k)
							}
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				if _, err := m.CheckInvariants(tx); err != nil {
					t.Errorf("invariants after concurrency: %v", err)
				}
				return nil
			})
		})
	}
}

func TestDeleteAllPaths(t *testing.T) {
	// Exercise every delete case: leaf, one child (left/right), two children
	// with adjacent and distant successors.
	tm := engines.MustNew("norec")
	m := rbtree.New(tm)
	keys := []int64{50, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43, 56, 68, 81, 93}
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		for _, k := range keys {
			m.Put(tx, k, k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	order := []int64{6, 93, 25, 50, 75, 12, 87, 37, 62, 18, 31, 43, 56, 68, 81}
	remaining := len(keys)
	for _, k := range order {
		checkedOp(t, tm, m, func(tx stm.Tx) {
			if !m.Delete(tx, k) {
				t.Errorf("Delete(%d) missed", k)
			}
		})
		remaining--
		_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
			if got := m.Len(tx); got != remaining {
				t.Errorf("after Delete(%d): len %d, want %d", k, got, remaining)
			}
			return nil
		})
	}
}
