// Package skiplist is a transactional skip-list integer set, the structure of
// the paper's §5.1 microbenchmark (the Deuce IntSet benchmark). Tower levels
// are derived deterministically from the key so that runs are reproducible
// across engines and thread counts.
package skiplist

import (
	"math"
	"math/bits"

	"repro/internal/stm"
)

// MaxLevel bounds tower height; 2^20 expected elements is ample for the
// paper's 100k-element configuration.
const MaxLevel = 20

// node is a skip-list tower. Keys and heights are immutable; the forward
// pointers are the transactional variables.
type node struct {
	key  int64
	next []stm.Var // len == height; each holds *node
}

// Set is a transactional skip-list set of int64 keys.
type Set struct {
	tm   stm.TM
	head *node // sentinel tower of full height, key = -inf
}

// New returns an empty set bound to tm.
func New(tm stm.TM) *Set {
	head := &node{key: math.MinInt64, next: make([]stm.Var, MaxLevel)}
	for i := range head.next {
		head.next[i] = tm.NewVar((*node)(nil))
	}
	return &Set{tm: tm, head: head}
}

// levelOf derives a deterministic tower height from the key (geometric with
// p = 1/2), so the same key always builds the same tower.
func levelOf(k int64) int {
	z := uint64(k) * 0x9E3779B97F4A7C15
	z ^= z >> 29
	lvl := 1 + bits.TrailingZeros64(z|1<<(MaxLevel-1))
	if lvl > MaxLevel {
		lvl = MaxLevel
	}
	return lvl
}

func deref(tx stm.Tx, v stm.Var) *node {
	val := tx.Read(v)
	if val == nil {
		return nil
	}
	return val.(*node)
}

// findPreds fills preds with the rightmost node at each level whose key is
// < k, and returns the candidate node at level 0.
func (s *Set) findPreds(tx stm.Tx, k int64, preds []*node) *node {
	curr := s.head
	for lvl := MaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := deref(tx, curr.next[lvl])
			if next == nil || next.key >= k {
				break
			}
			curr = next
		}
		if preds != nil {
			preds[lvl] = curr
		}
	}
	return deref(tx, curr.next[0])
}

// Contains reports whether k is in the set.
func (s *Set) Contains(tx stm.Tx, k int64) bool {
	cand := s.findPreds(tx, k, nil)
	return cand != nil && cand.key == k
}

// Insert adds k and reports whether the set changed.
func (s *Set) Insert(tx stm.Tx, k int64) bool {
	var preds [MaxLevel]*node
	cand := s.findPreds(tx, k, preds[:])
	if cand != nil && cand.key == k {
		return false
	}
	h := levelOf(k)
	n := &node{key: k, next: make([]stm.Var, h)}
	for lvl := 0; lvl < h; lvl++ {
		succ := deref(tx, preds[lvl].next[lvl])
		n.next[lvl] = s.tm.NewVar(stm.Value(succ))
		tx.Write(preds[lvl].next[lvl], n)
	}
	return true
}

// Remove deletes k and reports whether the set changed.
func (s *Set) Remove(tx stm.Tx, k int64) bool {
	var preds [MaxLevel]*node
	cand := s.findPreds(tx, k, preds[:])
	if cand == nil || cand.key != k {
		return false
	}
	for lvl := 0; lvl < len(cand.next); lvl++ {
		tx.Write(preds[lvl].next[lvl], deref(tx, cand.next[lvl]))
	}
	return true
}

// Len counts the elements by walking level 0.
func (s *Set) Len(tx stm.Tx) int {
	n := 0
	for curr := deref(tx, s.head.next[0]); curr != nil; curr = deref(tx, curr.next[0]) {
		n++
	}
	return n
}

// Keys returns the elements in ascending order.
func (s *Set) Keys(tx stm.Tx) []int64 {
	var out []int64
	for curr := deref(tx, s.head.next[0]); curr != nil; curr = deref(tx, curr.next[0]) {
		out = append(out, curr.key)
	}
	return out
}
