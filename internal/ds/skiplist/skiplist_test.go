package skiplist_test

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds/skiplist"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func TestModelSequential(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			s := skiplist.New(tm)
			model := map[int64]bool{}
			r := xrand.New(17)
			for i := 0; i < 800; i++ {
				k := int64(r.Intn(200))
				op := r.Intn(3)
				err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					switch op {
					case 0:
						if got, want := s.Insert(tx, k), !model[k]; got != want {
							t.Errorf("Insert(%d) = %v, want %v", k, got, want)
						}
					case 1:
						if got, want := s.Remove(tx, k), model[k]; got != want {
							t.Errorf("Remove(%d) = %v, want %v", k, got, want)
						}
					default:
						if got, want := s.Contains(tx, k), model[k]; got != want {
							t.Errorf("Contains(%d) = %v, want %v", k, got, want)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				switch op {
				case 0:
					model[k] = true
				case 1:
					delete(model, k)
				}
			}
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				keys := s.Keys(tx)
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Errorf("keys not sorted: %v", keys)
				}
				if len(keys) != len(model) {
					t.Errorf("len = %d, model = %d", len(keys), len(model))
				}
				return nil
			})
		})
	}
}

func TestSetAlgebraProperty(t *testing.T) {
	// Insert then remove of disjoint batches: only the first batch remains.
	f := func(a, b []uint8) bool {
		tm := engines.MustNew("twm")
		s := skiplist.New(tm)
		ok := true
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, k := range a {
				s.Insert(tx, int64(k))
			}
			for _, k := range b {
				s.Insert(tx, int64(k)+1000)
			}
			for _, k := range b {
				s.Remove(tx, int64(k)+1000)
			}
			for _, k := range a {
				if !s.Contains(tx, int64(k)) {
					ok = false
				}
			}
			for _, k := range b {
				if s.Contains(tx, int64(k)+1000) {
					ok = false
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	// The paper's microbenchmark shape: concurrent inserts and removes over
	// a shared range. Afterwards, the set content must equal the effect of
	// some serial order — verified via per-key ownership (each key touched
	// by one worker only).
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			s := skiplist.New(tm)
			const workers = 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := xrand.New(uint64(w + 1))
					for i := 0; i < 120; i++ {
						k := int64(w*1000 + r.Intn(50))
						insert := r.Bool(0.5)
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							if insert {
								s.Insert(tx, k)
							} else {
								s.Remove(tx, k)
							}
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
				keys := s.Keys(tx)
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Errorf("keys not sorted after concurrency")
				}
				seen := map[int64]bool{}
				for _, k := range keys {
					if seen[k] {
						t.Errorf("duplicate key %d", k)
					}
					seen[k] = true
				}
				return nil
			})
		})
	}
}

func TestLargeBuild(t *testing.T) {
	tm := engines.MustNew("twm")
	s := skiplist.New(tm)
	const n = 3000
	for i := 0; i < n; i += 100 {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			for j := i; j < i+100; j++ {
				s.Insert(tx, int64(j*7%n))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		if got := s.Len(tx); got != n {
			t.Errorf("len = %d, want %d", got, n)
		}
		return nil
	})
}
