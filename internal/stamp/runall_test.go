package stamp_test

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/stamp"
	"repro/internal/stamp/genome"
	"repro/internal/stamp/intruder"
	"repro/internal/stamp/kmeans"
	"repro/internal/stamp/labyrinth"
	"repro/internal/stamp/ssca2"
	"repro/internal/stamp/vacation"
)

// small builds a test-sized instance of each application.
func small() []func() stamp.Workload {
	return []func() stamp.Workload{
		func() stamp.Workload { return genome.New(genome.Small()) },
		func() stamp.Workload { return intruder.New(intruder.Small()) },
		func() stamp.Workload { return kmeans.New("kmeans-low", kmeans.Small()) },
		func() stamp.Workload { return labyrinth.New(labyrinth.Small()) },
		func() stamp.Workload { return ssca2.New(ssca2.Small()) },
		func() stamp.Workload { return vacation.New("vacation-high", vacation.Small()) },
	}
}

// TestAllAppsAllEngines runs every application's full Setup/Run/Validate
// lifecycle on every engine with enough workers to exercise real conflicts.
func TestAllAppsAllEngines(t *testing.T) {
	for _, mk := range small() {
		name := mk().Name()
		t.Run(name, func(t *testing.T) {
			for _, engine := range engines.Names() {
				t.Run(engine, func(t *testing.T) {
					tm := engines.MustNew(engine)
					w := mk()
					if err := w.Setup(tm); err != nil {
						t.Fatalf("setup: %v", err)
					}
					if err := w.Run(tm, 4); err != nil {
						t.Fatalf("run: %v", err)
					}
					if err := w.Validate(tm); err != nil {
						t.Fatalf("validate: %v", err)
					}
				})
			}
		})
	}
}

// TestSingleThreadDeterminism: with one worker, two runs on the same engine
// must do the same amount of transactional work.
func TestSingleThreadDeterminism(t *testing.T) {
	run := func() uint64 {
		tm := engines.MustNew("twm")
		w := vacation.New("vacation-high", vacation.Small())
		if err := w.Setup(tm); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(tm, 1); err != nil {
			t.Fatal(err)
		}
		if err := w.Validate(tm); err != nil {
			t.Fatal(err)
		}
		return tm.Stats().Snapshot().Commits
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic single-thread runs: %d vs %d commits", a, b)
	}
}
