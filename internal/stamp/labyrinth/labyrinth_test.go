package labyrinth

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/stm"
)

func TestRoutesAndValidates(t *testing.T) {
	tm := engines.MustNew("twm")
	b := New(Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
	if b.Routed() == 0 {
		t.Fatalf("nothing routed")
	}
}

func TestPathsAreDisjoint(t *testing.T) {
	tm := engines.MustNew("tl2")
	b := New(Params{Width: 10, Height: 10, Depth: 2, Paths: 8, WallFraction: 0, Seed: 3})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
	// Cell ownership is exclusive by construction; double-check that no two
	// paths share a cell via the ownership map Validate built.
	seen := map[point]int{}
	for id, cells := range b.pathCell {
		for _, pt := range cells {
			if other, dup := seen[pt]; dup {
				t.Fatalf("cell %v owned by paths %d and %d", pt, other, id)
			}
			seen[pt] = id
		}
	}
}

func TestUnroutableWhenWalledIn(t *testing.T) {
	// A single request whose destination is sealed off must fail gracefully.
	tm := engines.MustNew("norec")
	b := New(Params{Width: 5, Height: 5, Depth: 1, Paths: 0, WallFraction: 0, Seed: 1})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	// Hand-build: wall off (4,4); route (0,0) -> (4,4).
	seal := []point{{3, 4, 0}, {4, 3, 0}, {3, 3, 0}}
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		for _, pt := range seal {
			tx.Write(b.grid[b.idx(pt)], wall)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	b.reqs = []request{{id: 1, src: point{0, 0, 0}, dst: point{4, 4, 0}}}
	if err := b.Run(tm, 1); err != nil {
		t.Fatal(err)
	}
	if b.routed.Load() != 0 || b.failed.Load() != 1 {
		t.Fatalf("routed=%d failed=%d, want 0/1", b.routed.Load(), b.failed.Load())
	}
}

func TestShortestPathLaidIsConnectedManhattan(t *testing.T) {
	// On an empty grid, the BFS path length equals the Manhattan distance.
	tm := engines.MustNew("jvstm")
	b := New(Params{Width: 8, Height: 8, Depth: 1, Paths: 0, WallFraction: 0, Seed: 1})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	b.reqs = []request{{id: 1, src: point{1, 1, 0}, dst: point{6, 4, 0}}}
	if err := b.Run(tm, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
	want := 5 + 3 + 1 // manhattan distance + src cell
	if got := len(b.pathCell[1]); got != want {
		t.Fatalf("path length %d, want %d", got, want)
	}
}
