// Package labyrinth is the STAMP maze-routing benchmark: workers pull
// (source, destination) work items and route non-overlapping paths through a
// shared 3-D grid using Lee's breadth-first expansion. A router reads large
// swaths of the grid (the expansion frontier) and writes only its final path
// cells, so transactions are long with big read sets — the configuration
// where classic validation aborts most and the paper reports the largest
// time-warp wins.
package labyrinth

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Params configures a labyrinth instance.
type Params struct {
	Width, Height, Depth int
	Paths                int     // routing requests
	WallFraction         float64 // fraction of cells pre-filled as walls
	// MaxRadius bounds the src-dst Chebyshev distance of a request
	// (0 = unbounded). STAMP's inputs route mostly local nets; locality
	// keeps BFS read sets regional, which is what leaves concurrent routers
	// commutable (and time-warpable) instead of reading the whole grid.
	MaxRadius int
	Seed      uint64
}

// Default returns the benchmark-sized configuration.
func Default() Params {
	return Params{Width: 48, Height: 48, Depth: 3, Paths: 64, WallFraction: 0.05, MaxRadius: 10, Seed: 1}
}

// Small returns a test-sized instance.
func Small() Params {
	return Params{Width: 12, Height: 12, Depth: 2, Paths: 10, WallFraction: 0.05, Seed: 11}
}

// Cell contents: empty, wall, or a positive path id.
const (
	empty = 0
	wall  = -1
)

type point struct{ x, y, z int }

type request struct {
	id       int
	src, dst point
}

// Bench is one benchmark instance.
type Bench struct {
	p    Params
	grid []stm.Var // int per cell
	reqs []request

	routed   atomic.Int64
	failed   atomic.Int64
	pathCell map[int][]point // filled by Validate
}

// New returns a labyrinth workload.
func New(p Params) *Bench { return &Bench{p: p} }

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "labyrinth" }

func (b *Bench) idx(pt point) int {
	return (pt.z*b.p.Height+pt.y)*b.p.Width + pt.x
}

func (b *Bench) inBounds(pt point) bool {
	return pt.x >= 0 && pt.x < b.p.Width &&
		pt.y >= 0 && pt.y < b.p.Height &&
		pt.z >= 0 && pt.z < b.p.Depth
}

var dirs = []point{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}

// Setup implements stamp.Workload: carve walls and generate endpoint pairs on
// distinct empty cells.
func (b *Bench) Setup(tm stm.TM) error {
	r := xrand.New(b.p.Seed)
	cells := b.p.Width * b.p.Height * b.p.Depth
	values := make([]int, cells)
	for i := range values {
		if r.Bool(b.p.WallFraction) {
			values[i] = wall
		}
	}
	used := map[point]bool{}
	clampDim := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v >= hi {
			return hi - 1
		}
		return v
	}
	pickFree := func(near *point) (point, bool) {
		for tries := 0; tries < 4*cells; tries++ {
			var pt point
			if near == nil || b.p.MaxRadius <= 0 {
				pt = point{r.Intn(b.p.Width), r.Intn(b.p.Height), r.Intn(b.p.Depth)}
			} else {
				rad := b.p.MaxRadius
				pt = point{
					clampDim(near.x+r.Intn(2*rad+1)-rad, 0, b.p.Width),
					clampDim(near.y+r.Intn(2*rad+1)-rad, 0, b.p.Height),
					r.Intn(b.p.Depth),
				}
			}
			if values[b.idx(pt)] == empty && !used[pt] {
				used[pt] = true
				return pt, true
			}
		}
		return point{}, false
	}
	b.reqs = make([]request, 0, b.p.Paths)
	for i := 0; i < b.p.Paths; i++ {
		src, ok1 := pickFree(nil)
		if !ok1 {
			break
		}
		dst, ok2 := pickFree(&src)
		if !ok2 {
			break
		}
		b.reqs = append(b.reqs, request{id: i + 1, src: src, dst: dst})
	}
	b.grid = make([]stm.Var, cells)
	for i := range b.grid {
		b.grid[i] = tm.NewVar(values[i])
	}
	return nil
}

// route is one routing transaction: BFS over transactionally-read cells, then
// write the backtracked path. Returns false when no path exists in the
// current grid state.
func (b *Bench) route(tx stm.Tx, req request) bool {
	cells := b.p.Width * b.p.Height * b.p.Depth
	parent := make([]int, cells)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	free := func(pt point) bool {
		v := tx.Read(b.grid[b.idx(pt)]).(int)
		return v == empty
	}
	if !free(req.src) || !free(req.dst) {
		return false
	}
	frontier := []point{req.src}
	parent[b.idx(req.src)] = -1
	found := false
	for len(frontier) > 0 && !found {
		var next []point
		for _, pt := range frontier {
			for _, d := range dirs {
				np := point{pt.x + d.x, pt.y + d.y, pt.z + d.z}
				if !b.inBounds(np) || parent[b.idx(np)] != -2 {
					continue
				}
				if !free(np) {
					parent[b.idx(np)] = -3 // blocked
					continue
				}
				parent[b.idx(np)] = b.idx(pt)
				if np == req.dst {
					found = true
					break
				}
				next = append(next, np)
			}
			if found {
				break
			}
		}
		frontier = next
	}
	if !found {
		return false
	}
	// Backtrack and claim the path cells.
	for at := b.idx(req.dst); at != -1; at = parent[at] {
		tx.Write(b.grid[at], req.id)
	}
	return true
}

// Run implements stamp.Workload.
func (b *Bench) Run(tm stm.TM, threads int) error {
	if threads < 1 {
		threads = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(b.reqs) {
					return
				}
				req := b.reqs[i]
				var ok bool
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					ok = b.route(tx, req)
					return nil
				}); err != nil {
					errCh <- err
					return
				}
				if ok {
					b.routed.Add(1)
				} else {
					b.failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Routed reports how many paths were successfully laid.
func (b *Bench) Routed() int64 { return b.routed.Load() }

// Validate implements stamp.Workload: every laid path must be a connected
// src-dst sequence of cells all owned by that path, and paths are disjoint
// by construction of cell ownership.
func (b *Bench) Validate(tm stm.TM) error {
	if b.routed.Load()+b.failed.Load() != int64(len(b.reqs)) {
		return fmt.Errorf("labyrinth: %d routed + %d failed != %d requests",
			b.routed.Load(), b.failed.Load(), len(b.reqs))
	}
	if b.routed.Load() == 0 && len(b.reqs) > 0 {
		return fmt.Errorf("labyrinth: no path routed at all")
	}
	b.pathCell = map[int][]point{}
	return stm.Atomically(tm, true, func(tx stm.Tx) error {
		owner := make(map[point]int)
		for z := 0; z < b.p.Depth; z++ {
			for y := 0; y < b.p.Height; y++ {
				for x := 0; x < b.p.Width; x++ {
					pt := point{x, y, z}
					v := tx.Read(b.grid[b.idx(pt)]).(int)
					if v > 0 {
						owner[pt] = v
						b.pathCell[v] = append(b.pathCell[v], pt)
					}
				}
			}
		}
		for _, req := range b.reqs {
			cells := b.pathCell[req.id]
			if len(cells) == 0 {
				continue // failed request
			}
			// src and dst must be owned by this path.
			if owner[req.src] != req.id || owner[req.dst] != req.id {
				return fmt.Errorf("labyrinth: path %d does not own its endpoints", req.id)
			}
			// Connectivity: BFS inside the owned cells from src reaches dst.
			seen := map[point]bool{req.src: true}
			queue := []point{req.src}
			for len(queue) > 0 {
				pt := queue[0]
				queue = queue[1:]
				for _, d := range dirs {
					np := point{pt.x + d.x, pt.y + d.y, pt.z + d.z}
					if b.inBounds(np) && owner[np] == req.id && !seen[np] {
						seen[np] = true
						queue = append(queue, np)
					}
				}
			}
			if !seen[req.dst] {
				return fmt.Errorf("labyrinth: path %d is disconnected", req.id)
			}
		}
		return nil
	})
}

var _ stamp.Workload = (*Bench)(nil)
