package intruder

import (
	"testing"

	"repro/internal/engines"
)

func TestNoAttacksNoDetections(t *testing.T) {
	tm := engines.MustNew("twm")
	b := New(Params{Flows: 32, FragmentsPer: 3, FragmentSize: 8, AttackPct: 0, Seed: 4})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
	if len(b.detected) != 0 {
		t.Fatalf("false positives: %v", b.detected)
	}
}

func TestAllAttacksDetected(t *testing.T) {
	tm := engines.MustNew("tl2")
	b := New(Params{Flows: 32, FragmentsPer: 3, FragmentSize: 8, AttackPct: 1.0, Seed: 4})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if len(b.attacks) != 32 {
		t.Fatalf("planted %d attacks, want 32", len(b.attacks))
	}
	if err := b.Run(tm, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureSpansFragments(t *testing.T) {
	// With FragmentSize smaller than the signature, detection only works if
	// reassembly is correct (the signature never fits in one fragment).
	tm := engines.MustNew("norec")
	b := New(Params{Flows: 16, FragmentsPer: 8, FragmentSize: 4, AttackPct: 1.0, Seed: 6})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
}

func TestPacketAccounting(t *testing.T) {
	tm := engines.MustNew("jvstm")
	p := Small()
	b := New(p)
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if got, want := len(b.packets), p.Flows*p.FragmentsPer; got != want {
		t.Fatalf("packets = %d, want %d", got, want)
	}
	if err := b.Run(tm, 4); err != nil {
		t.Fatal(err)
	}
	if got := b.processed.Load(); got != int64(len(b.packets)) {
		t.Fatalf("processed = %d, want %d", got, len(b.packets))
	}
}
