// Package intruder is the STAMP network intrusion-detection benchmark: a
// stream of out-of-order packet fragments is pulled from a shared
// transactional queue, reassembled into flows in a transactional map, and
// complete flows are scanned for attack signatures (pure CPU work outside
// transactions). The transactional phase — dequeue a fragment, update the
// flow's reassembly state, retire completed flows — has medium-sized,
// bursty conflicts, the "simple conflict pattern" the paper groups intruder
// under.
package intruder

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ds/hashmap"
	"repro/internal/ds/queue"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Params configures an intruder instance.
type Params struct {
	Flows        int
	FragmentsPer int     // fragments per flow
	FragmentSize int     // payload bytes per fragment
	AttackPct    float64 // fraction of flows carrying the signature
	Seed         uint64
}

// Default returns the benchmark-sized configuration.
func Default() Params {
	return Params{Flows: 1 << 10, FragmentsPer: 6, FragmentSize: 16, AttackPct: 0.1, Seed: 1}
}

// Small returns a test-sized instance.
func Small() Params {
	return Params{Flows: 64, FragmentsPer: 4, FragmentSize: 8, AttackPct: 0.2, Seed: 13}
}

// signature is the attack byte pattern planted in malicious flows.
var signature = []byte("ATTACK!")

// packet is one fragment of a flow.
type packet struct {
	flow    int
	index   int
	payload []byte
}

// flowState is the immutable reassembly record stored in the map: received
// fragment payloads (nil for missing) and a countdown.
type flowState struct {
	got     []*packet
	missing int
}

// Bench is one benchmark instance.
type Bench struct {
	p       Params
	packets []*packet
	attacks map[int]bool // planted attack flows

	input    *queue.Queue
	assembly *hashmap.Map // flow id -> *flowState

	detectedMu sync.Mutex
	detected   map[int]bool
	processed  atomic.Int64
}

// New returns an intruder workload.
func New(p Params) *Bench { return &Bench{p: p} }

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "intruder" }

// Setup implements stamp.Workload: build flows (some carrying the attack
// signature), fragment them, shuffle all fragments and enqueue them.
func (b *Bench) Setup(tm stm.TM) error {
	r := xrand.New(b.p.Seed)
	b.attacks = map[int]bool{}
	b.detected = map[int]bool{}
	b.packets = make([]*packet, 0, b.p.Flows*b.p.FragmentsPer)
	for f := 0; f < b.p.Flows; f++ {
		payload := make([]byte, b.p.FragmentsPer*b.p.FragmentSize)
		for i := range payload {
			payload[i] = byte('a' + r.Intn(20)) // alphabet avoiding the signature
		}
		if r.Bool(b.p.AttackPct) {
			pos := r.Intn(len(payload) - len(signature))
			copy(payload[pos:], signature)
			b.attacks[f] = true
		}
		for i := 0; i < b.p.FragmentsPer; i++ {
			b.packets = append(b.packets, &packet{
				flow:    f,
				index:   i,
				payload: payload[i*b.p.FragmentSize : (i+1)*b.p.FragmentSize],
			})
		}
	}
	r.Shuffle(len(b.packets), func(i, j int) {
		b.packets[i], b.packets[j] = b.packets[j], b.packets[i]
	})

	b.input = queue.New(tm)
	b.assembly = hashmap.New(tm, b.p.Flows)
	const batch = 64
	for lo := 0; lo < len(b.packets); lo += batch {
		hi := lo + batch
		if hi > len(b.packets) {
			hi = len(b.packets)
		}
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, p := range b.packets[lo:hi] {
				b.input.Enqueue(tx, p)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// Run implements stamp.Workload: each worker loops { tx: dequeue + update
// reassembly }, and scans completed flows outside the transaction.
func (b *Bench) Run(tm stm.TM, threads int) error {
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var completed *flowState
				var flowID int
				var done bool
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					completed, done = nil, false
					v, ok := b.input.Dequeue(tx)
					if !ok {
						done = true
						return nil
					}
					p := v.(*packet)
					flowID = p.flow
					var st *flowState
					if cur, ok := b.assembly.Get(tx, int64(p.flow)); ok {
						st = cur.(*flowState)
					} else {
						st = &flowState{got: make([]*packet, b.p.FragmentsPer), missing: b.p.FragmentsPer}
					}
					if st.got[p.index] != nil {
						return fmt.Errorf("intruder: duplicate fragment %d of flow %d", p.index, p.flow)
					}
					next := &flowState{got: append([]*packet(nil), st.got...), missing: st.missing - 1}
					next.got[p.index] = p
					if next.missing == 0 {
						b.assembly.Delete(tx, int64(p.flow))
						completed = next
					} else {
						b.assembly.Put(tx, int64(p.flow), next)
					}
					return nil
				}); err != nil {
					errCh <- err
					return
				}
				if done {
					return
				}
				b.processed.Add(1)
				if completed != nil {
					// Detection phase: CPU-only scan outside the transaction.
					full := make([]byte, 0, b.p.FragmentsPer*b.p.FragmentSize)
					for _, frag := range completed.got {
						full = append(full, frag.payload...)
					}
					if bytes.Contains(full, signature) {
						b.detectedMu.Lock()
						b.detected[flowID] = true
						b.detectedMu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Validate implements stamp.Workload: every packet processed, every flow
// fully reassembled, and the detected attack set equals the planted one.
func (b *Bench) Validate(tm stm.TM) error {
	if got, want := b.processed.Load(), int64(len(b.packets)); got != want {
		return fmt.Errorf("intruder: processed %d packets, want %d", got, want)
	}
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if n := b.assembly.Len(tx); n != 0 {
			return fmt.Errorf("intruder: %d flows left unassembled", n)
		}
		if !b.input.Empty(tx) {
			return fmt.Errorf("intruder: input queue not drained")
		}
		return nil
	}); err != nil {
		return err
	}
	if len(b.detected) != len(b.attacks) {
		return fmt.Errorf("intruder: detected %d attacks, planted %d", len(b.detected), len(b.attacks))
	}
	for f := range b.attacks {
		if !b.detected[f] {
			return fmt.Errorf("intruder: planted attack in flow %d not detected", f)
		}
	}
	return nil
}

var _ stamp.Workload = (*Bench)(nil)
