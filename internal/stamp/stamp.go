// Package stamp defines the common harness interface for the Go ports of the
// STAMP applications (Minh et al., IISWC 2008) used in §5.3 of the TWM paper:
// genome, intruder, kmeans (low/high), labyrinth, ssca2 and vacation
// (low/high). Yada is excluded (not available in the paper's Java port
// either) and bayes is excluded for its non-determinism, matching the paper.
//
// Each application is a fixed amount of work: the benchmark metric is the
// time to complete it with a given number of worker goroutines, plus the
// abort rate accumulated on the way (Table 2).
package stamp

import "repro/internal/stm"

// Workload is one STAMP application instance. The lifecycle is
// Setup -> Run -> Validate, all against the same TM. Instances are
// single-use: construct a fresh one per run.
type Workload interface {
	// Name is the benchmark's reporting name (e.g. "vacation-high").
	Name() string
	// Setup builds the initial shared state (single-threaded, may use
	// transactions for convenience; not timed).
	Setup(tm stm.TM) error
	// Run executes the whole workload with the given number of worker
	// goroutines and blocks until it completes (the timed region).
	Run(tm stm.TM, threads int) error
	// Validate checks application-level output invariants (not timed).
	Validate(tm stm.TM) error
}
