// Package kmeans is the STAMP K-means clustering benchmark: points are
// partitioned among workers, each worker finds the nearest center for its
// points and transactionally accumulates them into the next iteration's
// per-cluster sums. Contention is governed by the number of clusters — the
// paper's "low" configuration uses many clusters (accumulator updates spread
// out), "high" uses few (hot accumulators).
package kmeans

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Params configures a K-means instance.
type Params struct {
	Points    int
	Dims      int
	Clusters  int
	Threshold float64 // stop when fewer than Threshold*Points memberships change
	MaxIters  int
	Seed      uint64
}

// Low returns the paper's low-contention configuration, scaled to
// container-sized inputs (many clusters spread the transactional updates).
func Low() Params {
	return Params{Points: 4096, Dims: 8, Clusters: 40, Threshold: 0.001, MaxIters: 30, Seed: 1}
}

// High returns the high-contention configuration (few, hot clusters).
func High() Params {
	return Params{Points: 4096, Dims: 8, Clusters: 6, Threshold: 0.001, MaxIters: 30, Seed: 1}
}

// Small returns a test-sized instance.
func Small() Params {
	return Params{Points: 300, Dims: 4, Clusters: 5, Threshold: 0.01, MaxIters: 10, Seed: 3}
}

// Bench is one benchmark instance.
type Bench struct {
	name   string
	p      Params
	points [][]float64

	// Transactional accumulators for the next iteration's centers.
	lens []stm.Var   // int: members per cluster
	sums [][]stm.Var // float64 per dimension

	centers    [][]float64 // current centers, updated between iterations
	membership []int       // per-point cluster, owned by the point's worker

	iters     int
	converged bool
}

// New returns a kmeans workload named name (e.g. "kmeans-low").
func New(name string, p Params) *Bench { return &Bench{name: name, p: p} }

// Name implements stamp.Workload.
func (b *Bench) Name() string { return b.name }

// Setup implements stamp.Workload: deterministic points drawn around
// Clusters true centers, plus the transactional accumulators.
func (b *Bench) Setup(tm stm.TM) error {
	r := xrand.New(b.p.Seed)
	trueCenters := make([][]float64, b.p.Clusters)
	for c := range trueCenters {
		trueCenters[c] = make([]float64, b.p.Dims)
		for d := range trueCenters[c] {
			trueCenters[c][d] = r.Float64() * 100
		}
	}
	b.points = make([][]float64, b.p.Points)
	for i := range b.points {
		c := trueCenters[r.Intn(b.p.Clusters)]
		pt := make([]float64, b.p.Dims)
		for d := range pt {
			pt[d] = c[d] + (r.Float64()-0.5)*8
		}
		b.points[i] = pt
	}

	b.lens = make([]stm.Var, b.p.Clusters)
	b.sums = make([][]stm.Var, b.p.Clusters)
	for c := 0; c < b.p.Clusters; c++ {
		b.lens[c] = tm.NewVar(0)
		b.sums[c] = make([]stm.Var, b.p.Dims)
		for d := range b.sums[c] {
			b.sums[c][d] = tm.NewVar(0.0)
		}
	}

	// Initial centers: the first Clusters points (STAMP convention).
	b.centers = make([][]float64, b.p.Clusters)
	for c := range b.centers {
		b.centers[c] = append([]float64(nil), b.points[c%len(b.points)]...)
	}
	b.membership = make([]int, b.p.Points)
	for i := range b.membership {
		b.membership[i] = -1
	}
	return nil
}

func nearest(pt []float64, centers [][]float64) int {
	best, bestD := 0, math.MaxFloat64
	for c, ctr := range centers {
		d := 0.0
		for i := range pt {
			diff := pt[i] - ctr[i]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Run implements stamp.Workload.
func (b *Bench) Run(tm stm.TM, threads int) error {
	if threads < 1 {
		threads = 1
	}
	for iter := 0; iter < b.p.MaxIters; iter++ {
		changedTotal := 0
		var mu sync.Mutex
		var wg sync.WaitGroup
		chunk := (len(b.points) + threads - 1) / threads
		var firstErr error
		for w := 0; w < threads; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(b.points) {
				hi = len(b.points)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				changed := 0
				for i := lo; i < hi; i++ {
					c := nearest(b.points[i], b.centers)
					if c != b.membership[i] {
						changed++
						b.membership[i] = c
					}
					pt := b.points[i]
					// The STAMP transaction: fold the point into the next
					// iteration's accumulator for its cluster.
					if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						tx.Write(b.lens[c], tx.Read(b.lens[c]).(int)+1)
						for d := 0; d < b.p.Dims; d++ {
							tx.Write(b.sums[c][d], tx.Read(b.sums[c][d]).(float64)+pt[d])
						}
						return nil
					}); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
				mu.Lock()
				changedTotal += changed
				mu.Unlock()
			}(lo, hi)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}

		// Fold the accumulators into the centers for the next round.
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			for c := 0; c < b.p.Clusters; c++ {
				n := tx.Read(b.lens[c]).(int)
				if n > 0 {
					for d := 0; d < b.p.Dims; d++ {
						b.centers[c][d] = tx.Read(b.sums[c][d]).(float64) / float64(n)
					}
				}
				tx.Write(b.lens[c], 0) //twm:allow abortshape fold-then-reset of the accumulators is the barrier step (STAMP kmeans)
				for d := 0; d < b.p.Dims; d++ {
					tx.Write(b.sums[c][d], 0.0) //twm:allow abortshape fold-then-reset of the accumulators is the barrier step (STAMP kmeans)
				}
			}
			return nil
		}); err != nil {
			return err
		}
		b.iters = iter + 1
		if float64(changedTotal) < b.p.Threshold*float64(len(b.points)) {
			b.converged = true
			break
		}
	}
	return nil
}

// Iterations reports how many rounds ran (for reporting).
func (b *Bench) Iterations() int { return b.iters }

// Validate implements stamp.Workload: every point belongs to its nearest
// center (a fixpoint property once converged) and memberships are complete.
func (b *Bench) Validate(tm stm.TM) error {
	for i, m := range b.membership {
		if m < 0 || m >= b.p.Clusters {
			return fmt.Errorf("kmeans: point %d has invalid membership %d", i, m)
		}
	}
	if b.iters == 0 {
		return fmt.Errorf("kmeans: no iterations ran")
	}
	// The centers must reproduce a sane clustering: average distance of a
	// point to its center must be far below the spread of the centers.
	totalD := 0.0
	for i, pt := range b.points {
		c := b.centers[b.membership[i]]
		d := 0.0
		for k := range pt {
			diff := pt[k] - c[k]
			d += diff * diff
		}
		totalD += math.Sqrt(d)
	}
	avg := totalD / float64(len(b.points))
	if avg > 50 {
		return fmt.Errorf("kmeans: clustering diverged (avg point-center distance %.1f)", avg)
	}
	return nil
}

var _ stamp.Workload = (*Bench)(nil)
