package kmeans

import (
	"testing"

	"repro/internal/engines"
)

func TestConvergesOnSeparatedClusters(t *testing.T) {
	tm := engines.MustNew("twm")
	b := New("kmeans-test", Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 3); err != nil {
		t.Fatal(err)
	}
	if b.Iterations() == 0 {
		t.Fatalf("no iterations ran")
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipComplete(t *testing.T) {
	tm := engines.MustNew("norec")
	b := New("kmeans-test", Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 2); err != nil {
		t.Fatal(err)
	}
	for i, m := range b.membership {
		if m < 0 || m >= b.p.Clusters {
			t.Fatalf("point %d unassigned (%d)", i, m)
		}
	}
}

func TestHighAndLowPresetsDiffer(t *testing.T) {
	lo, hi := Low(), High()
	if lo.Clusters <= hi.Clusters {
		t.Fatalf("low contention must use more clusters than high (%d vs %d)", lo.Clusters, hi.Clusters)
	}
}

func TestAccumulatorsResetBetweenIterations(t *testing.T) {
	tm := engines.MustNew("tl2")
	b := New("kmeans-test", Params{Points: 60, Dims: 2, Clusters: 3, Threshold: 0, MaxIters: 3, Seed: 5})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 2); err != nil {
		t.Fatal(err)
	}
	// Threshold 0 forces all MaxIters rounds; per-round totals must stay
	// Points (they would explode if accumulators were not reset).
	if b.Iterations() != 3 {
		t.Fatalf("iterations = %d, want 3", b.Iterations())
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
}
