package vacation

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func TestLifecycleBalances(t *testing.T) {
	tm := engines.MustNew("twm")
	b := New("vacation-test", Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
	res, _ := b.Stats()
	if res == 0 {
		t.Fatalf("no reservations made")
	}
}

func TestMakeThenDeleteReleases(t *testing.T) {
	tm := engines.MustNew("tl2")
	b := New("vacation-test", Params{Relations: 16, Transactions: 0, Queries: 4, QueryRange: 1, UserPct: 1, Seed: 2})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	for i := 0; i < 20; i++ {
		if err := b.makeReservation(tm, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Validate(tm); err != nil {
		t.Fatalf("after reservations: %v", err)
	}
	// Delete every customer: all Used counts must drop to zero.
	for id := int64(0); id < 16; id++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			custV, ok := b.customers.Get(tx, id)
			if !ok {
				return nil
			}
			list, _ := custV.(*resNode)
			for n := list; n != nil; n = n.next {
				v, _ := b.tables[n.kind].Get(tx, n.id)
				res := v.(Reservation)
				res.Used--
				b.tables[n.kind].Put(tx, n.id, res)
			}
			b.customers.Put(tx, id, (*resNode)(nil))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Validate(tm); err != nil {
		t.Fatalf("after deletions: %v", err)
	}
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		for k := Kind(0); k < numKinds; k++ {
			b.tables[k].ForEach(tx, func(id int64, v stm.Value) bool {
				if res := v.(Reservation); res.Used != 0 {
					t.Errorf("resource %d/%d still used: %+v", k, id, res)
				}
				return true
			})
		}
		return nil
	})
}

func TestUpdateTablesKeepsInvariants(t *testing.T) {
	tm := engines.MustNew("norec")
	b := New("vacation-test", Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	for i := 0; i < 100; i++ {
		if err := b.updateTables(tm, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
}

func TestPresetsMatchPaperKnobs(t *testing.T) {
	lo, hi := Low(), High()
	if lo.QueryRange <= hi.QueryRange {
		t.Fatalf("low contention must query a wider range")
	}
	if lo.UserPct <= hi.UserPct {
		t.Fatalf("low contention must have more pure reservations")
	}
	if lo.Queries >= hi.Queries {
		t.Fatalf("high contention must touch more resources per tx")
	}
}
