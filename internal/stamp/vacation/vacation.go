// Package vacation is the STAMP travel-reservation benchmark: an in-memory
// database of cars, flights and rooms plus a customer table, all kept in
// transactional ordered maps (the paper's Java port uses red-black trees; we
// use the treap from internal/ds/treap, which has the same O(log n)
// root-to-leaf conflict footprint).
//
// Client transactions follow the STAMP mix: MakeReservation (query a set of
// resources and book the cheapest available per kind), DeleteCustomer (bill
// and release all of a customer's bookings) and UpdateTables (grow tables or
// retire unused resources). "Low" contention queries a wide id range with
// almost only reservations; "high" narrows the range and adds more mutating
// transactions, exactly like the -q/-u/-n knobs of the original.
package vacation

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ds/treap"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Kind enumerates reservable resource kinds.
type Kind int

// Resource kinds.
const (
	Car Kind = iota
	Flight
	Room
	numKinds
)

// Reservation is a resource row; stored immutably (copies on update) so every
// engine, including NOrec's value-based validation, can handle it.
type Reservation struct {
	Total int
	Used  int
	Price int
}

// resNode is an immutable list cell of a customer's bookings.
type resNode struct {
	kind  Kind
	id    int64
	price int
	next  *resNode
}

// Params configures a vacation instance.
type Params struct {
	Relations    int     // rows per resource table
	Transactions int     // total client transactions
	Queries      int     // resource queries per transaction
	QueryRange   float64 // fraction of the id space queried
	UserPct      float64 // fraction of MakeReservation transactions
	Seed         uint64
}

// Low returns the paper's low-contention configuration (-q90 -u98 -n2).
func Low() Params {
	return Params{Relations: 1 << 10, Transactions: 4096, Queries: 2, QueryRange: 0.90, UserPct: 0.98, Seed: 1}
}

// High returns the high-contention configuration (-q60 -u90 -n4).
func High() Params {
	return Params{Relations: 1 << 10, Transactions: 4096, Queries: 4, QueryRange: 0.60, UserPct: 0.90, Seed: 1}
}

// Small returns a test-sized instance.
func Small() Params {
	return Params{Relations: 64, Transactions: 400, Queries: 3, QueryRange: 0.7, UserPct: 0.9, Seed: 7}
}

// Bench is one benchmark instance.
type Bench struct {
	name      string
	p         Params
	tables    [numKinds]*treap.Map // id -> Reservation
	customers *treap.Map           // id -> *resNode (booking list)

	reservationsMade atomic.Int64
	customersDeleted atomic.Int64
}

// New returns a vacation workload named name ("vacation-low"/"vacation-high").
func New(name string, p Params) *Bench { return &Bench{name: name, p: p} }

// Name implements stamp.Workload.
func (b *Bench) Name() string { return b.name }

// Setup implements stamp.Workload: populate the three resource tables and the
// customer table.
func (b *Bench) Setup(tm stm.TM) error {
	r := xrand.New(b.p.Seed)
	for k := Kind(0); k < numKinds; k++ {
		b.tables[k] = treap.New(tm)
	}
	b.customers = treap.New(tm)
	const batch = 64
	for lo := 0; lo < b.p.Relations; lo += batch {
		hi := lo + batch
		if hi > b.p.Relations {
			hi = b.p.Relations
		}
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			for id := lo; id < hi; id++ {
				for k := Kind(0); k < numKinds; k++ {
					b.tables[k].Put(tx, int64(id), Reservation{
						Total: 100 + r.Intn(300),
						Price: 50 + r.Intn(450),
					})
				}
				b.customers.Put(tx, int64(id), (*resNode)(nil))
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// makeReservation is the STAMP MAKE_RESERVATION transaction: query Queries
// random resources per kind, remember the cheapest available one of each
// kind, then book them for a random customer.
func (b *Bench) makeReservation(tm stm.TM, r *xrand.Rand) error {
	span := int64(float64(b.p.Relations) * b.p.QueryRange)
	if span < 1 {
		span = 1
	}
	type pick struct {
		kind Kind
		id   int64
	}
	queries := make([]pick, 0, b.p.Queries)
	for i := 0; i < b.p.Queries; i++ {
		queries = append(queries, pick{kind: Kind(r.Intn(int(numKinds))), id: r.Int63() % span})
	}
	custID := r.Int63() % int64(b.p.Relations)
	booked := false
	err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		booked = false
		var best [numKinds]struct {
			id    int64
			price int
			found bool
		}
		for _, q := range queries {
			v, ok := b.tables[q.kind].Get(tx, q.id)
			if !ok {
				continue
			}
			res := v.(Reservation)
			if res.Used >= res.Total {
				continue
			}
			slot := &best[q.kind]
			if !slot.found || res.Price < slot.price {
				slot.id, slot.price, slot.found = q.id, res.Price, true
			}
		}
		custV, ok := b.customers.Get(tx, custID)
		if !ok {
			return nil // customer deleted concurrently; nothing to book
		}
		list, _ := custV.(*resNode)
		for k := Kind(0); k < numKinds; k++ {
			if !best[k].found {
				continue
			}
			v, ok := b.tables[k].Get(tx, best[k].id)
			if !ok {
				continue
			}
			res := v.(Reservation)
			if res.Used >= res.Total {
				continue
			}
			res.Used++
			b.tables[k].Put(tx, best[k].id, res)
			list = &resNode{kind: k, id: best[k].id, price: res.Price, next: list}
			booked = true
		}
		if booked {
			b.customers.Put(tx, custID, list)
		}
		return nil
	})
	if err == nil && booked {
		b.reservationsMade.Add(1)
	}
	return err
}

// deleteCustomer bills a customer and releases all its bookings; the customer
// row is reset rather than removed so the id space stays stable (STAMP
// re-inserts customers on demand; resetting models the same conflict shape).
func (b *Bench) deleteCustomer(tm stm.TM, r *xrand.Rand) error {
	custID := r.Int63() % int64(b.p.Relations)
	deleted := false
	err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		deleted = false
		custV, ok := b.customers.Get(tx, custID)
		if !ok {
			return nil
		}
		list, _ := custV.(*resNode)
		if list == nil {
			return nil
		}
		for n := list; n != nil; n = n.next {
			v, ok := b.tables[n.kind].Get(tx, n.id)
			if !ok {
				return fmt.Errorf("vacation: booking references missing resource %d/%d", n.kind, n.id)
			}
			res := v.(Reservation)
			res.Used--
			if res.Used < 0 {
				return fmt.Errorf("vacation: negative Used on %d/%d", n.kind, n.id)
			}
			b.tables[n.kind].Put(tx, n.id, res)
		}
		b.customers.Put(tx, custID, (*resNode)(nil))
		deleted = true
		return nil
	})
	if err == nil && deleted {
		b.customersDeleted.Add(1)
	}
	return err
}

// updateTables is the STAMP UPDATE_TABLES transaction: grow a resource's
// capacity and reprice it, or retire an unused resource.
func (b *Bench) updateTables(tm stm.TM, r *xrand.Rand) error {
	kind := Kind(r.Intn(int(numKinds)))
	id := r.Int63() % int64(b.p.Relations)
	add := r.Bool(0.5)
	price := 50 + r.Intn(450)
	return stm.Atomically(tm, false, func(tx stm.Tx) error {
		v, ok := b.tables[kind].Get(tx, id)
		if !ok {
			if add {
				b.tables[kind].Put(tx, id, Reservation{Total: 100, Price: price})
			}
			return nil
		}
		res := v.(Reservation)
		if add {
			res.Total += 100
			res.Price = price
			b.tables[kind].Put(tx, id, res)
		} else if res.Used == 0 {
			b.tables[kind].Delete(tx, id)
		}
		return nil
	})
}

// Run implements stamp.Workload: workers split the transaction budget and
// draw operations from the STAMP mix.
func (b *Bench) Run(tm stm.TM, threads int) error {
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	base := xrand.New(b.p.Seed + 42)
	perW := (b.p.Transactions + threads - 1) / threads
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(r *xrand.Rand) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				p := r.Float64()
				var err error
				switch {
				case p < b.p.UserPct:
					err = b.makeReservation(tm, r)
				case p < b.p.UserPct+(1-b.p.UserPct)/2:
					err = b.deleteCustomer(tm, r)
				default:
					err = b.updateTables(tm, r)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(base.Split(w))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Stats returns op counters for reporting.
func (b *Bench) Stats() (reservations, deletions int64) {
	return b.reservationsMade.Load(), b.customersDeleted.Load()
}

// Validate implements stamp.Workload: the database must balance — every
// resource has 0 <= Used <= Total, and the Used counts equal the customers'
// outstanding bookings, grouped by resource.
func (b *Bench) Validate(tm stm.TM) error {
	return stm.Atomically(tm, true, func(tx stm.Tx) error {
		type key struct {
			k  Kind
			id int64
		}
		held := map[key]int{}
		var walkErr error
		b.customers.ForEach(tx, func(id int64, v stm.Value) bool {
			list, _ := v.(*resNode)
			for n := list; n != nil; n = n.next {
				held[key{n.kind, n.id}]++
			}
			return true
		})
		if walkErr != nil {
			return walkErr
		}
		for k := Kind(0); k < numKinds; k++ {
			var tableErr error
			b.tables[k].ForEach(tx, func(id int64, v stm.Value) bool {
				res := v.(Reservation)
				if res.Used < 0 || res.Used > res.Total {
					tableErr = fmt.Errorf("vacation: %d/%d out of range: %+v", k, id, res)
					return false
				}
				if held[key{k, id}] != res.Used {
					tableErr = fmt.Errorf("vacation: %d/%d Used=%d but customers hold %d", k, id, res.Used, held[key{k, id}])
					return false
				}
				delete(held, key{k, id})
				return true
			})
			if tableErr != nil {
				return tableErr
			}
		}
		if len(held) != 0 {
			return fmt.Errorf("vacation: bookings on missing resources: %v", held)
		}
		return nil
	})
}

var _ stamp.Workload = (*Bench)(nil)
