// Package ssca2 is the STAMP SSCA2 benchmark (kernel 1 of the Scalable
// Synthetic Compact Applications graph suite): concurrent construction of a
// directed multigraph's adjacency structure from a generated edge list. The
// transactions are tiny — append one arc to a vertex's adjacency vector — so
// the workload measures per-transaction fixed costs more than conflict
// resolution, and no engine can win by avoiding aborts (the paper places it
// among the "simple conflict pattern" benchmarks).
package ssca2

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ds/tvector"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Params configures an SSCA2 instance.
type Params struct {
	Vertices int
	Edges    int
	// CliquePeers skews endpoints so some vertices are hot (R-MAT-like
	// locality); 0 disables skew.
	HotFraction float64
	Seed        uint64
}

// Default returns the benchmark-sized configuration.
func Default() Params {
	return Params{Vertices: 1 << 11, Edges: 1 << 14, HotFraction: 0.1, Seed: 1}
}

// Small returns a test-sized instance.
func Small() Params {
	return Params{Vertices: 64, Edges: 512, HotFraction: 0.1, Seed: 5}
}

type edge struct {
	u, v   int
	weight int64
}

// Bench is one benchmark instance.
type Bench struct {
	p     Params
	edges []edge
	adj   []*tvector.Vector
}

// New returns an SSCA2 workload.
func New(p Params) *Bench { return &Bench{p: p} }

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "ssca2" }

// Setup implements stamp.Workload: generate the edge list and pre-size each
// vertex's adjacency vector to its final degree (kernel 1 knows the counts).
func (b *Bench) Setup(tm stm.TM) error {
	r := xrand.New(b.p.Seed)
	hot := int(float64(b.p.Vertices) * b.p.HotFraction)
	if hot < 1 {
		hot = 1
	}
	pick := func() int {
		if r.Bool(0.25) {
			return r.Intn(hot) // skewed endpoint
		}
		return r.Intn(b.p.Vertices)
	}
	b.edges = make([]edge, b.p.Edges)
	degree := make([]int, b.p.Vertices)
	for i := range b.edges {
		e := edge{u: pick(), v: pick(), weight: r.Int63() % 1000}
		b.edges[i] = e
		degree[e.u]++
	}
	b.adj = make([]*tvector.Vector, b.p.Vertices)
	for v := range b.adj {
		cap := degree[v]
		if cap == 0 {
			cap = 1
		}
		b.adj[v] = tvector.New(tm, cap)
	}
	return nil
}

// arc is the adjacency payload.
type arc struct {
	to     int
	weight int64
}

// Run implements stamp.Workload: workers claim edges from a shared cursor and
// append each arc transactionally.
func (b *Bench) Run(tm stm.TM, threads int) error {
	if threads < 1 {
		threads = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	const batch = 16
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(batch)) - batch
				if lo >= len(b.edges) {
					return
				}
				hi := lo + batch
				if hi > len(b.edges) {
					hi = len(b.edges)
				}
				for _, e := range b.edges[lo:hi] {
					e := e
					if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						if !b.adj[e.u].Push(tx, arc{to: e.v, weight: e.weight}) {
							return fmt.Errorf("ssca2: adjacency overflow at vertex %d", e.u)
						}
						return nil
					}); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Validate implements stamp.Workload: per-vertex degrees and the multiset of
// arcs must match the generated edge list exactly.
func (b *Bench) Validate(tm stm.TM) error {
	wantDeg := make([]int, b.p.Vertices)
	wantSum := make([]int64, b.p.Vertices)
	for _, e := range b.edges {
		wantDeg[e.u]++
		wantSum[e.u] += int64(e.v) + e.weight
	}
	return stm.Atomically(tm, true, func(tx stm.Tx) error {
		for v := 0; v < b.p.Vertices; v++ {
			n := b.adj[v].Len(tx)
			if n != wantDeg[v] {
				return fmt.Errorf("ssca2: vertex %d degree %d, want %d", v, n, wantDeg[v])
			}
			var sum int64
			for i := 0; i < n; i++ {
				a := b.adj[v].Get(tx, i).(arc)
				if a.to < 0 || a.to >= b.p.Vertices {
					return fmt.Errorf("ssca2: vertex %d has arc to %d", v, a.to)
				}
				sum += int64(a.to) + a.weight
			}
			if sum != wantSum[v] {
				return fmt.Errorf("ssca2: vertex %d arc checksum %d, want %d", v, sum, wantSum[v])
			}
		}
		return nil
	})
}

var _ stamp.Workload = (*Bench)(nil)
