package ssca2

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/stm"
)

func TestBuildAndValidate(t *testing.T) {
	tm := engines.MustNew("twm")
	b := New(Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
}

func TestDegreesMatchEdgeList(t *testing.T) {
	tm := engines.MustNew("norec")
	b := New(Params{Vertices: 32, Edges: 200, HotFraction: 0.2, Seed: 8})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 2); err != nil {
		t.Fatal(err)
	}
	want := make([]int, 32)
	for _, e := range b.edges {
		want[e.u]++
	}
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		total := 0
		for v := 0; v < 32; v++ {
			if got := b.adj[v].Len(tx); got != want[v] {
				t.Errorf("vertex %d degree = %d, want %d", v, got, want[v])
			}
			total += b.adj[v].Len(tx)
		}
		if total != 200 {
			t.Errorf("total arcs = %d, want 200", total)
		}
		return nil
	})
}

func TestHotSkewProducesHubs(t *testing.T) {
	b := New(Default())
	tm := engines.MustNew("tl2")
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	hot := int(float64(b.p.Vertices) * b.p.HotFraction)
	hotDeg, coldDeg := 0, 0
	for _, e := range b.edges {
		if e.u < hot {
			hotDeg++
		} else {
			coldDeg++
		}
	}
	// Hot vertices are 10% of the id space but draw 25%+ of edges.
	if float64(hotDeg) < 0.2*float64(len(b.edges)) {
		t.Fatalf("skew missing: hot vertices hold only %d/%d edges", hotDeg, len(b.edges))
	}
	_ = coldDeg
}

func TestSingleThreadEqualsParallel(t *testing.T) {
	degrees := func(threads int) []int {
		tm := engines.MustNew("jvstm")
		b := New(Params{Vertices: 32, Edges: 300, HotFraction: 0.1, Seed: 4})
		if err := b.Setup(tm); err != nil {
			t.Fatal(err)
		}
		if err := b.Run(tm, threads); err != nil {
			t.Fatal(err)
		}
		out := make([]int, 32)
		_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
			for v := range out {
				out[v] = b.adj[v].Len(tx)
			}
			return nil
		})
		return out
	}
	a, b := degrees(1), degrees(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vertex %d degree differs: %d vs %d", i, a[i], b[i])
		}
	}
}
