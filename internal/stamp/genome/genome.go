// Package genome is the STAMP gene-sequencing benchmark: reassemble a gene
// from overlapping segments. Phase 1 deduplicates the sampled segments into a
// transactional hash set; phase 2 links segments whose (length-1)-overlap
// matches, claiming both ends transactionally; phase 3 walks the linked chain
// and reconstructs the gene.
//
// The generated gene has unique (segLength-1)-grams, so the overlap graph is
// a single chain and the reconstruction must reproduce the input exactly —
// a strong end-to-end self-check. The paper lists genome among the
// benchmarks with real time-warp opportunities: segment claims near the end
// of the table commute with claims near the front, but classic validation
// aborts one of them.
package genome

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ds/hashmap"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Params configures a genome instance.
type Params struct {
	GeneLength int // bases in the gene
	SegLength  int // bases per segment
	Segments   int // sampled segments (duplicates expected)
	// Step is the sampling stride: windows start at multiples of Step
	// (default 1). With Step > 1, the maximal overlap between consecutive
	// windows is SegLength-Step, so the multi-round matching loop (overlap
	// lengths from SegLength-1 downward, as in STAMP) only finds links in a
	// lower round.
	Step int
	Seed uint64
}

// Default returns the benchmark-sized configuration.
func Default() Params {
	return Params{GeneLength: 1 << 12, SegLength: 16, Segments: 1 << 13, Step: 2, Seed: 1}
}

// Small returns a test-sized instance.
func Small() Params {
	return Params{GeneLength: 256, SegLength: 8, Segments: 512, Seed: 9}
}

// segment is one deduplicated segment with transactional chain links.
type segment struct {
	data []byte
	next stm.Var // *segment: successor in the overlap chain
	prev stm.Var // *segment: predecessor (claim marker)
}

// Bench is one benchmark instance.
type Bench struct {
	p    Params
	gene []byte

	sampled [][]byte // phase-1 input, with duplicates

	dedup    *hashmap.Map // hash(segment) -> *segment
	segsMu   sync.Mutex
	segments []*segment // deduplicated segments (appended in phase 1)

	prefixIdx []map[uint64]*segment // per overlap length: prefix hash -> segment (immutable after phase 1)
	linked    atomic.Int64
	rounds    int // overlap rounds that found at least one link

	result []byte
}

// New returns a genome workload.
func New(p Params) *Bench { return &Bench{p: p} }

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "genome" }

// hashBytes is FNV-1a (inlined to keep workloads dependency-free).
func hashBytes(s []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range s {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Setup implements stamp.Workload: build a gene whose (SegLength-1)-grams are
// all distinct, then sample segments (all consecutive windows for coverage,
// plus random duplicates up to Segments).
func (b *Bench) Setup(tm stm.TM) error {
	if b.p.Step <= 0 {
		b.p.Step = 1
	}
	if b.p.Step >= b.p.SegLength {
		return fmt.Errorf("genome: Step %d must be below SegLength %d", b.p.Step, b.p.SegLength)
	}
	r := xrand.New(b.p.Seed)
	// Uniqueness of the shortest overlap used guarantees a single chain.
	k := b.p.SegLength - b.p.Step
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return fmt.Errorf("genome: could not build gene with unique %d-grams", k)
		}
		gene := make([]byte, b.p.GeneLength)
		for i := range gene {
			gene[i] = byte(r.Intn(256))
		}
		seen := make(map[uint64]bool, b.p.GeneLength)
		unique := true
		for i := 0; i+k <= len(gene); i++ {
			h := hashBytes(gene[i : i+k])
			if seen[h] {
				unique = false
				break
			}
			seen[h] = true
		}
		if unique {
			b.gene = gene
			break
		}
	}

	windows := (b.p.GeneLength-b.p.SegLength)/b.p.Step + 1
	b.sampled = make([][]byte, 0, b.p.Segments+windows)
	for i := 0; i < windows; i++ {
		off := i * b.p.Step
		b.sampled = append(b.sampled, b.gene[off:off+b.p.SegLength])
	}
	for len(b.sampled) < b.p.Segments+windows {
		off := r.Intn(windows) * b.p.Step
		b.sampled = append(b.sampled, b.gene[off:off+b.p.SegLength])
	}
	r.Shuffle(len(b.sampled), func(i, j int) {
		b.sampled[i], b.sampled[j] = b.sampled[j], b.sampled[i]
	})

	b.dedup = hashmap.New(tm, windows*2)
	b.segments = make([]*segment, 0, windows)
	return nil
}

// Run implements stamp.Workload.
func (b *Bench) Run(tm stm.TM, threads int) error {
	if threads < 1 {
		threads = 1
	}
	if err := b.dedupPhase(tm, threads); err != nil {
		return err
	}
	// Build the immutable per-overlap prefix indexes between phases
	// (single-threaded, as STAMP rebuilds its hash tables between phases).
	b.prefixIdx = make([]map[uint64]*segment, b.p.SegLength)
	for l := b.p.SegLength - b.p.Step; l < b.p.SegLength; l++ {
		idx := make(map[uint64]*segment, len(b.segments))
		for _, s := range b.segments {
			idx[hashBytes(s.data[:l])] = s
		}
		b.prefixIdx[l] = idx
	}
	// STAMP's multi-round matching: try the longest overlap first; only the
	// SegLength-Step round can match under strided sampling, so the earlier
	// rounds exercise the lookup-miss path.
	for l := b.p.SegLength - 1; l >= b.p.SegLength-b.p.Step; l-- {
		before := b.linked.Load()
		if err := b.linkPhase(tm, threads, l); err != nil {
			return err
		}
		if b.linked.Load() > before {
			b.rounds++
		}
	}
	return nil
}

// Rounds reports how many overlap rounds produced links.
func (b *Bench) Rounds() int { return b.rounds }

// dedupPhase inserts every sampled segment into the transactional set;
// exactly one insert per distinct segment wins and allocates the node.
func (b *Bench) dedupPhase(tm stm.TM, threads int) error {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	const batch = 32
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(batch)) - batch
				if lo >= len(b.sampled) {
					return
				}
				hi := lo + batch
				if hi > len(b.sampled) {
					hi = len(b.sampled)
				}
				for _, data := range b.sampled[lo:hi] {
					seg := &segment{data: data, next: tm.NewVar((*segment)(nil)), prev: tm.NewVar((*segment)(nil))}
					var won bool
					if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						_, won = b.dedup.PutIfAbsent(tx, int64(hashBytes(data)), seg)
						return nil
					}); err != nil {
						errCh <- err
						return
					}
					if won {
						b.segsMu.Lock()
						b.segments = append(b.segments, seg)
						b.segsMu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// linkPhase claims successor links at overlap length l: segment s links to
// the segment whose l-prefix equals s's l-suffix. Both ends are claimed in
// one transaction so the chain stays a partial function in both directions.
func (b *Bench) linkPhase(tm stm.TM, threads int, l int) error {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(b.segments) {
					return
				}
				s := b.segments[i]
				succ, ok := b.prefixIdx[l][hashBytes(s.data[b.p.SegLength-l:])]
				if !ok || succ == s {
					continue // tail segment (or self-overlap; impossible with unique grams)
				}
				var claimed bool
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					claimed = false
					if tx.Read(s.next) != (*segment)(nil) {
						return nil
					}
					if tx.Read(succ.prev) != (*segment)(nil) {
						return nil
					}
					tx.Write(s.next, succ) //twm:allow abortshape claim both links only if free: check-then-act is the algorithm (STAMP genome)
					tx.Write(succ.prev, s)
					claimed = true
					return nil
				}); err != nil {
					errCh <- err
					return
				}
				if claimed {
					b.linked.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Validate implements stamp.Workload: phase 3 — walk the chain from the
// unique head, reconstruct the gene and compare it to the input.
func (b *Bench) Validate(tm stm.TM) error {
	var head *segment
	err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		head = nil
		heads := 0
		for _, s := range b.segments {
			if tx.Read(s.prev) == (*segment)(nil) {
				head = s
				heads++
			}
		}
		if heads != 1 {
			return fmt.Errorf("genome: %d chain heads, want 1", heads)
		}
		out := make([]byte, 0, b.p.GeneLength)
		out = append(out, head.data...)
		n := 1
		for s := head; ; {
			nextV := tx.Read(s.next)
			next, _ := nextV.(*segment)
			if next == nil {
				break
			}
			out = append(out, next.data[b.p.SegLength-b.p.Step:]...)
			s = next
			n++
			if n > len(b.segments) {
				return fmt.Errorf("genome: chain cycle detected")
			}
		}
		if n != len(b.segments) {
			return fmt.Errorf("genome: chain covers %d of %d segments", n, len(b.segments))
		}
		b.result = out
		return nil
	})
	if err != nil {
		return err
	}
	if !bytes.Equal(b.result, b.gene) {
		return fmt.Errorf("genome: reconstructed gene differs from input (len %d vs %d)", len(b.result), len(b.gene))
	}
	return nil
}

var _ stamp.Workload = (*Bench)(nil)
