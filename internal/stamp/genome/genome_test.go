package genome

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/stm"
)

func TestSetupBuildsUniqueGramGene(t *testing.T) {
	tm := engines.MustNew("twm")
	b := New(Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	k := b.p.SegLength - 1
	seen := map[string]bool{}
	for i := 0; i+k <= len(b.gene); i++ {
		g := string(b.gene[i : i+k])
		if seen[g] {
			t.Fatalf("duplicate %d-gram at %d", k, i)
		}
		seen[g] = true
	}
	wantSampled := b.p.Segments + b.p.GeneLength - b.p.SegLength + 1
	if len(b.sampled) != wantSampled {
		t.Fatalf("sampled %d, want %d", len(b.sampled), wantSampled)
	}
}

func TestDedupPhaseExactCount(t *testing.T) {
	tm := engines.MustNew("twm")
	b := New(Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.dedupPhase(tm, 4); err != nil {
		t.Fatal(err)
	}
	windows := b.p.GeneLength - b.p.SegLength + 1
	if len(b.segments) != windows {
		t.Fatalf("deduplicated to %d segments, want %d windows", len(b.segments), windows)
	}
	var n int
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		n = b.dedup.Len(tx)
		return nil
	})
	if n != windows {
		t.Fatalf("set size %d, want %d", n, windows)
	}
}

func TestLinkPhaseFormsSingleChain(t *testing.T) {
	tm := engines.MustNew("tl2")
	b := New(Small())
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 4); err != nil {
		t.Fatal(err)
	}
	windows := b.p.GeneLength - b.p.SegLength + 1
	if got := b.linked.Load(); got != int64(windows-1) {
		t.Fatalf("linked %d pairs, want %d", got, windows-1)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
	if string(b.result) != string(b.gene) {
		t.Fatalf("reconstruction mismatch")
	}
}

func TestStridedMultiRound(t *testing.T) {
	// With Step=3, only the SegLength-3 overlap round can link; the two
	// higher rounds must come up empty, and reconstruction must still
	// reproduce the gene exactly (each link extends by 3 bases).
	tm := engines.MustNew("twm")
	b := New(Params{GeneLength: 300, SegLength: 9, Segments: 200, Step: 3, Seed: 21})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
	if got := b.Rounds(); got != 1 {
		t.Fatalf("linking rounds with matches = %d, want 1", got)
	}
	windows := (b.p.GeneLength-b.p.SegLength)/b.p.Step + 1
	if got := b.linked.Load(); got != int64(windows-1) {
		t.Fatalf("linked %d, want %d", got, windows-1)
	}
}

func TestStepValidation(t *testing.T) {
	tm := engines.MustNew("tl2")
	b := New(Params{GeneLength: 64, SegLength: 4, Segments: 10, Step: 4, Seed: 1})
	if err := b.Setup(tm); err == nil {
		t.Fatalf("Step >= SegLength must be rejected")
	}
}

func TestSingleThreaded(t *testing.T) {
	tm := engines.MustNew("norec")
	b := New(Params{GeneLength: 128, SegLength: 6, Segments: 100, Seed: 2})
	if err := b.Setup(tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(tm, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(tm); err != nil {
		t.Fatal(err)
	}
}
