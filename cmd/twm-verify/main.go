// Command twm-verify soak-tests an engine's safety properties from the
// command line: it runs randomized concurrent histories and checks each one
// against Adya's Direct Serialization Graph (the §3.1/§4 correctness
// criterion), plus application-level invariant checks (conserved bank
// totals, exact counters). It is the standalone face of the internal/dsg
// oracle used by the test suite — useful for long-running verification on
// new hardware or after modifications.
//
// Usage:
//
//	twm-verify [-engine all] [-rounds 50] [-vars 6] [-goroutines 8]
//	           [-tx 150] [-ro 0.2] [-procs 8] [-yield] [-seed 1]
//
// Exit status is non-zero if any history is non-serializable or any
// invariant breaks; the offending cycle is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/bench"
	"repro/internal/dsg"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func main() {
	engine := flag.String("engine", "all", "engine to verify, or 'all'")
	rounds := flag.Int("rounds", 50, "randomized histories per engine")
	vars := flag.Int("vars", 6, "shared variables per history")
	goroutines := flag.Int("goroutines", 8, "concurrent workers per history")
	txPerG := flag.Int("tx", 150, "committed transactions per worker")
	roP := flag.Float64("ro", 0.2, "fraction of read-only transactions")
	procs := flag.Int("procs", 8, "GOMAXPROCS during verification (oversubscription exposes more interleavings)")
	yield := flag.Bool("yield", true, "inject a scheduler yield per barrier")
	seed := flag.Uint64("seed", 1, "base seed")
	flag.Parse()

	runtime.GOMAXPROCS(*procs)

	names := engines.Names()
	if *engine != "all" {
		if _, err := engines.New(*engine); err != nil {
			fmt.Fprintln(os.Stderr, "twm-verify:", err)
			os.Exit(2)
		}
		names = []string{*engine}
	}

	failed := false
	for _, name := range names {
		fmt.Printf("%-12s ", name)
		ok := verifyEngine(name, *rounds, dsg.RunOptions{
			Vars:       *vars,
			Goroutines: *goroutines,
			TxPerG:     *txPerG,
			ReadOnlyP:  *roP,
			Seed:       *seed,
		}, *yield)
		if ok {
			fmt.Println("OK")
		} else {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// verifyEngine runs DSG rounds plus invariant checks, printing progress dots.
func verifyEngine(name string, rounds int, opts dsg.RunOptions, yield bool) bool {
	for round := 0; round < rounds; round++ {
		tm := engines.MustNew(name)
		var target stm.TM = tm
		if yield {
			target = bench.WithYield(tm, 1)
		}
		opts.Seed += uint64(round)*977 + 1
		rep := &reporter{}
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(verifyAbort); !ok {
						panic(r)
					}
				}
			}()
			dsg.CheckRandom(rep, target, opts)
		}()
		if rep.failed {
			fmt.Printf("\n  round %d FAILED:\n%s\n", round, rep.message)
			return false
		}
		if err := invariantRound(name, yield, opts.Seed); err != nil {
			fmt.Printf("\n  round %d invariant FAILED: %v\n", round, err)
			return false
		}
		if (round+1)%10 == 0 {
			fmt.Print(".")
		}
	}
	return true
}

// invariantRound runs a quick bank-conservation and exact-counter check.
func invariantRound(name string, yield bool, seed uint64) error {
	inner := engines.MustNew(name)
	var tm stm.TM = inner
	if yield {
		tm = bench.WithYield(inner, 1)
	}
	const accounts, total = 6, 600
	accs := make([]stm.Var, accounts)
	for i := range accs {
		accs[i] = tm.NewVar(100)
	}
	counter := tm.NewVar(0)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	increments := 0
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(r *xrand.Rand) {
			defer wg.Done()
			local := 0
			for i := 0; i < 100; i++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					if from != to {
						f := tx.Read(accs[from]).(int)
						if f >= 10 {
							tx.Write(accs[from], f-10) //twm:allow abortshape insufficient-funds guard is inherent check-then-act; the verifier wants this contention
							tx.Write(accs[to], tx.Read(accs[to]).(int)+10)
						}
					}
					tx.Write(counter, tx.Read(counter).(int)+1)
					return nil
				}); err != nil {
					errs <- err
					return
				}
				local++
			}
			mu.Lock()
			increments += local
			mu.Unlock()
		}(xrand.New(seed + uint64(g)))
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	return stm.Atomically(tm, true, func(tx stm.Tx) error {
		sum := 0
		for _, a := range accs {
			sum += tx.Read(a).(int)
		}
		if sum != total {
			return fmt.Errorf("bank total %d, want %d", sum, total)
		}
		if got := tx.Read(counter).(int); got != increments {
			return fmt.Errorf("counter %d, want %d", got, increments)
		}
		return nil
	})
}

// reporter adapts dsg.CheckRandom's testing.TB-shaped interface to CLI use.
type reporter struct {
	failed  bool
	message string
}

func (r *reporter) Helper() {}
func (r *reporter) Errorf(format string, args ...any) {
	r.failed = true
	r.message += fmt.Sprintf("  "+format+"\n", args...)
}
func (r *reporter) Fatalf(format string, args ...any) {
	r.Errorf(format, args...)
	panic(verifyAbort{})
}
func (r *reporter) Logf(string, ...any) {}
func (r *reporter) Failed() bool        { return r.failed }

type verifyAbort struct{}
