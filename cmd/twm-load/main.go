// Command twm-load is the open-loop load generator for twm-server. It has two
// modes:
//
//   - External: -url http://host:port drives a running twm-server and prints
//     the latency/outcome report for that one target.
//   - In-process A/B: -engines twm,twm-gc,tl2 boots a server per engine on a
//     loopback listener and offers the identical seeded load to each, so the
//     engines are compared under the same arrival schedule and key draws.
//     This mode produces the committed BENCH_server.json artifact.
//
// Flags:
//
//	-url        external server base URL (mutually exclusive with -engines)
//	-engines    comma-separated engine list for the in-process A/B (default twm,tl2)
//	-rate       offered arrivals/second (default 500)
//	-duration   load duration (default 5s)
//	-accounts   key space size (default 1024)
//	-zipf       Zipf skew s for account selection (default 1.1; 0 = uniform)
//	-update     update fraction of traffic (default 0.5)
//	-seed       replayable schedule seed (default 1)
//	-clock-shards    server clock shards; enables partition-aware key draws
//	-cross-shard-frac fraction of transfers spanning two clock shards
//	-gate       server gate slots, in-process mode only (0 = server default)
//	-gate-wait  server gate queue bound, in-process mode only
//	-timeout    server request timeout, in-process mode only (default 2s)
//	-json       write the artifact JSON to this path ("-" = stdout)
//	-min-commits fail (exit 1) unless every engine commits at least this many
//	             requests — the CI smoke gate
//
// Latency is measured from each request's scheduled arrival, so queueing and
// shedding at an overloaded server widen the reported percentiles instead of
// slowing the generator down (no coordinated omission).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "twm-load:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("twm-load", flag.ContinueOnError)
	url := fs.String("url", "", "external twm-server base URL (empty = in-process A/B)")
	engineList := fs.String("engines", "twm,tl2", "engines for the in-process A/B")
	rate := fs.Float64("rate", 500, "offered arrivals/second")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	accounts := fs.Int("accounts", 1024, "account key space")
	zipfS := fs.Float64("zipf", 1.1, "Zipf skew (0 = uniform)")
	updatePct := fs.Float64("update", 0.5, "update fraction of traffic")
	seed := fs.Uint64("seed", 1, "replayable schedule seed")
	clockShards := fs.Int("clock-shards", 0, "server clock shards; enables partition-aware key draws (in-process mode boots sharded servers)")
	crossShardFrac := fs.Float64("cross-shard-frac", 0, "fraction of transfers spanning two clock shards (needs -clock-shards > 1)")
	gate := fs.Int("gate", 0, "server gate slots (in-process mode; 0 = default)")
	gateWait := fs.Duration("gate-wait", 0, "server gate queue bound (in-process mode)")
	timeout := fs.Duration("timeout", 2*time.Second, "server request timeout (in-process mode)")
	jsonPath := fs.String("json", "", "write artifact JSON here (\"-\" = stdout)")
	minCommits := fs.Uint64("min-commits", 0, "fail unless every engine commits at least this many requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadgen.Config{
		Rate:           *rate,
		Duration:       *duration,
		Accounts:       *accounts,
		ZipfS:          *zipfS,
		UpdatePct:      *updatePct,
		Seed:           *seed,
		ClockShards:    *clockShards,
		CrossShardFrac: *crossShardFrac,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var art *loadgen.Artifact
	if *url != "" {
		res, err := loadgen.Run(ctx, strings.TrimRight(*url, "/"), cfg)
		if err != nil {
			return err
		}
		art = &loadgen.Artifact{Experiment: "server_latency_external", Config: cfg, Engines: []loadgen.Result{res}}
	} else {
		engines := strings.Split(*engineList, ",")
		for i := range engines {
			engines[i] = strings.TrimSpace(engines[i])
		}
		var err error
		art, err = loadgen.RunInProcess(ctx, engines, cfg, loadgen.ServerOptions{
			GateLimit:      *gate,
			GateWait:       *gateWait,
			RequestTimeout: *timeout,
		})
		if err != nil {
			return err
		}
	}

	report(art)
	if *jsonPath != "" {
		if *jsonPath == "-" {
			if err := art.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			if err := art.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "wrote", *jsonPath)
		}
	}

	for _, res := range art.Engines {
		if res.All.OK < *minCommits {
			return fmt.Errorf("%s committed %d requests, need at least %d", res.Engine, res.All.OK, *minCommits)
		}
		if res.LeakedGoroutines != 0 {
			return fmt.Errorf("%s leaked %d goroutines past drain", res.Engine, res.LeakedGoroutines)
		}
	}
	return nil
}

// report prints the human-readable comparison table to stderr (stdout is
// reserved for -json -).
func report(art *loadgen.Artifact) {
	w := os.Stderr
	fmt.Fprintf(w, "%-8s %-6s %8s %8s %6s %6s %6s %9s %9s %9s\n",
		"engine", "class", "sent", "ok", "shed", "cancel", "err", "p50ms", "p99ms", "p999ms")
	for _, res := range art.Engines {
		for _, row := range []struct {
			name string
			st   loadgen.OpStats
		}{{"update", res.Update}, {"ro", res.ReadOnly}, {"all", res.All}} {
			fmt.Fprintf(w, "%-8s %-6s %8d %8d %6d %6d %6d %9.2f %9.2f %9.2f\n",
				res.Engine, row.name, row.st.Sent, row.st.OK, row.st.Shed,
				row.st.Cancelled, row.st.Errors, row.st.P50ms, row.st.P99ms, row.st.P999ms)
		}
		if res.EngineStarts > 0 {
			fmt.Fprintf(w, "%-8s engine: starts=%d commits=%d aborts=%d sheds=%d cancels=%d leaked=%d\n",
				res.Engine, res.EngineStarts, res.EngineCommits, res.EngineAborts,
				res.ServerSheds, res.ServerCancels, res.LeakedGoroutines)
		}
	}
}
