// Command twm-bench regenerates every table and figure of the paper's
// evaluation (§5 of Diegues & Romano, PPoPP 2014) against this repository's
// STM engines.
//
// Usage:
//
//	twm-bench [flags] <experiment>
//
// Experiments:
//
//	skiplist   Fig. 3(a)+(b): SkipList throughput and abort rate
//	counters   Fig. 4(a): two shared counters (worst-case contention)
//	disjoint   Fig. 4(b): per-thread SkipLists (conflict-free)
//	overhead   Fig. 4(c): per-phase overhead breakdown
//	tree       ablation: treap vs red-black tree ordered maps (-zipf for skew)
//	stamp      Fig. 5 panel for one application (-app)
//	summary    Fig. 5(a)-(h) + Fig. 5(i) + Table 2 (all applications)
//	pressure   resource-exhaustion: stabilize/degrade/recover under a
//	           version budget, with admission gating and watchdog alerts
//	readscale  read-path scalability: read-dominated IntSet sweep over
//	           goroutine counts, emitting BENCH_readscale.json (-json)
//	groupcommit  commit pipelining: write-heavy Zipf counters A/B of each
//	           serial engine vs its flat-combining group-commit variant,
//	           emitting BENCH_groupcommit.json (-json)
//	durability fsync-policy latency ladder of the write-ahead log (off /
//	           interval / per-batch / per-commit) on the WAL-capable
//	           engines, emitting BENCH_durability.json (-json)
//	shardclock partitioned multi-clock A/B: unsharded twm vs a 16-shard
//	           clock domain on partitioned counters at several cross-shard
//	           mixes, emitting BENCH_shardclock.json (-json)
//	all        everything above (except the sweeps with their own axes)
//
// Flags select engines, thread counts, per-cell duration for the
// microbenchmarks, and input scale. The defaults are container-sized; pass
// -scale paper for the paper's input sizes (skiplist only; STAMP apps use
// their default presets).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/engines"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "twm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("twm-bench", flag.ContinueOnError)
	engineList := fs.String("engines", strings.Join(engines.PaperSet(), ","), "comma-separated engines to run")
	threadList := fs.String("threads", "1,4,8,16,32,64", "comma-separated goroutine counts")
	duration := fs.Duration("duration", 400*time.Millisecond, "per-cell duration for fixed-duration microbenchmarks")
	scale := fs.String("scale", "default", "input scale: default | paper (microbenchmarks) | small")
	app := fs.String("app", "", "application for the stamp experiment (see summary for names)")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	yieldEvery := fs.Int("yield-every", 1, "inject a scheduler yield after every N-th transactional barrier to simulate multi-core overlap on few cores (0 disables)")
	zipf := fs.Float64("zipf", 0, "Zipf skew for the tree experiment (0 = uniform)")
	csvPath := fs.String("csv", "", "also append machine-readable results to this CSV file")
	jsonPath := fs.String("json", "auto", "output path for the experiment's JSON artifact (auto = BENCH_<experiment>.json; empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment, got %d", fs.NArg())
	}
	exp := fs.Arg(0)

	threads, err := parseThreads(*threadList)
	if err != nil {
		return err
	}
	engineNames := strings.Split(*engineList, ",")
	for _, e := range engineNames {
		if _, err := engines.New(e); err != nil {
			return err
		}
	}
	cfg := bench.FigureConfig{Engines: engineNames, Threads: threads, Duration: *duration, Seed: *seed, YieldEvery: *yieldEvery}

	sl := bench.DefaultSkipList()
	if *scale == "paper" {
		sl = bench.PaperSkipList()
	}
	dj := bench.DefaultDisjoint()
	stampScale := "default"
	if *scale == "small" {
		stampScale = "small"
		sl = bench.SkipListConfig{Elements: 1000, KeyRange: 2000, UpdatePct: 0.25, Seed: *seed}
		dj = bench.DisjointConfig{ElementsPerList: 200, KeyRange: 400, Seed: *seed}
	}

	out := os.Stdout
	emit, closeCSV, err := csvSink(*csvPath)
	if err != nil {
		return err
	}
	defer closeCSV()

	switch exp {
	case "skiplist":
		res, err := bench.Fig3SkipList(out, cfg, sl)
		return emit("fig3-skiplist", res, err)
	case "counters":
		res, err := bench.Fig4aCounters(out, cfg)
		return emit("fig4a-counters", res, err)
	case "disjoint":
		res, err := bench.Fig4bDisjoint(out, cfg, dj)
		return emit("fig4b-disjoint", res, err)
	case "overhead":
		res, err := bench.Fig4cOverhead(out, cfg, dj)
		return emit("fig4c-overhead", res, err)
	case "tree":
		elements := 2000
		if *scale == "small" {
			elements = 500
		}
		res, err := bench.TreeFigure(out, cfg, elements, *zipf)
		return emit("tree", res, err)
	case "stamp":
		apps, err := bench.StampApps(stampScale)
		if err != nil {
			return err
		}
		mk, ok := apps[*app]
		if !ok {
			return fmt.Errorf("unknown app %q (have %v)", *app, bench.StampAppNames())
		}
		res, err := bench.Fig5Stamp(out, cfg, mk)
		return emit("fig5-"+*app, res, err)
	case "summary":
		return summary(cfg, stampScale, emit)
	case "pressure":
		res, err := bench.PressureFigure(out, cfg, bench.DefaultPressure())
		return emit("pressure", res, err)
	case "readscale":
		rs := bench.DefaultReadScaling()
		if *scale == "small" {
			rs = bench.ReadScalingConfig{Elements: 200, KeyRange: 400, UpdatePct: 0.05, Seed: *seed}
		}
		if *threadList == "1,4,8,16,32,64" { // default axis: use the readscale sweep
			cfg.Threads = bench.ReadScalingThreads()
		}
		res, err := bench.ReadScaleFigure(out, cfg, rs)
		if err != nil {
			return err
		}
		art := bench.NewReadScaleArtifact(cfg, rs, res)
		if err := writeArtifact(artifactPath(*jsonPath, "readscale"), art.WriteJSON, len(art.Cells)); err != nil {
			return err
		}
		return emit("readscale", res, nil)
	case "groupcommit":
		gc := bench.DefaultGroupCommit()
		if *scale == "small" {
			gc = bench.GroupCommitConfig{Counters: 256, WritesPerTx: 4, ZipfS: 1.1, Seed: *seed}
		}
		// The A/B sweep has its own default axes: the serial/grouped engine
		// pairs and the goroutine counts of the EXPERIMENTS.md table.
		if *engineList == strings.Join(engines.PaperSet(), ",") {
			cfg.Engines = bench.GroupCommitEngines()
		}
		if *threadList == "1,4,8,16,32,64" {
			cfg.Threads = bench.GroupCommitThreads()
		}
		res, err := bench.GroupCommitFigure(out, cfg, gc)
		if err != nil {
			return err
		}
		art := bench.NewGroupCommitArtifact(cfg, gc, res)
		if err := writeArtifact(artifactPath(*jsonPath, "groupcommit"), art.WriteJSON, len(art.Cells)); err != nil {
			return err
		}
		return emit("groupcommit", res, nil)
	case "durability":
		dc := bench.DefaultDurability()
		if *scale == "small" {
			dc.Accounts = 128
		}
		dc.Seed = *seed
		// The ladder has its own axes: the WAL-capable engine pair and one
		// goroutine count (the policy, not the thread sweep, is the x-axis).
		durEngines := engineNames
		if *engineList == strings.Join(engines.PaperSet(), ",") {
			durEngines = bench.DurabilityEngines()
		}
		durThreads := bench.DurabilityThreads()
		if *threadList != "1,4,8,16,32,64" && len(threads) > 0 {
			durThreads = threads[len(threads)-1]
		}
		art, err := bench.DurabilityFigure(out, durEngines, bench.DurabilityPolicies(), durThreads, *duration, dc)
		if err != nil {
			return err
		}
		if err := writeArtifact(artifactPath(*jsonPath, "durability"), art.WriteJSON, len(art.Cells)); err != nil {
			return err
		}
		return emit("durability", nil, nil)
	case "shardclock":
		sc := bench.DefaultShardClock()
		sc.Seed = *seed
		if *scale == "small" {
			sc.Partitions = 4
			sc.VarsPerPartition = 64
		}
		// The A/B has its own thread axis (the high-contention end of the
		// sweep, where clock sharing is the bottleneck).
		if *threadList == "1,4,8,16,32,64" {
			cfg.Threads = bench.ShardClockThreads()
		}
		art, err := bench.ShardClockFigure(out, cfg, sc)
		if err != nil {
			return err
		}
		if err := writeArtifact(artifactPath(*jsonPath, "shardclock"), art.WriteJSON, len(art.Cells)); err != nil {
			return err
		}
		return emit("shardclock", nil, nil)
	case "all":
		if res, err := bench.Fig3SkipList(out, cfg, sl); emit("fig3-skiplist", res, err) != nil {
			return err
		}
		if res, err := bench.Fig4aCounters(out, cfg); emit("fig4a-counters", res, err) != nil {
			return err
		}
		if res, err := bench.Fig4bDisjoint(out, cfg, dj); emit("fig4b-disjoint", res, err) != nil {
			return err
		}
		if res, err := bench.Fig4cOverhead(out, cfg, dj); emit("fig4c-overhead", res, err) != nil {
			return err
		}
		return summary(cfg, stampScale, emit)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// artifactPath resolves the -json flag for an experiment: "auto" selects the
// conventional BENCH_<experiment>.json, empty disables the artifact.
func artifactPath(flagValue, experiment string) string {
	if flagValue == "auto" {
		return "BENCH_" + experiment + ".json"
	}
	return flagValue
}

// writeArtifact writes a JSON artifact via the provided encoder; an empty
// path writes nothing.
func writeArtifact(path string, write func(io.Writer) error, cells int) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells)\n", path, cells)
	return nil
}

// emitFunc forwards a figure's results to the optional CSV sink.
type emitFunc func(experiment string, results []bench.Result, err error) error

// csvSink opens the optional CSV file and returns the emit hook.
func csvSink(path string) (emitFunc, func(), error) {
	if path == "" {
		return func(_ string, _ []bench.Result, err error) error { return err }, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if info, err := f.Stat(); err == nil && info.Size() == 0 {
		if err := bench.CSVHeader(f); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	emit := func(experiment string, results []bench.Result, err error) error {
		if err != nil {
			return err
		}
		return bench.WriteCSV(f, experiment, results)
	}
	return emit, func() { f.Close() }, nil
}

// summary runs every STAMP panel and prints Fig. 5(i) and Table 2.
func summary(cfg bench.FigureConfig, scale string, emit emitFunc) error {
	apps, err := bench.StampApps(scale)
	if err != nil {
		return err
	}
	var sum bench.Summary
	for _, name := range bench.StampAppNames() {
		results, err := bench.Fig5Stamp(os.Stdout, cfg, apps[name])
		if err := emit("fig5-"+name, results, err); err != nil {
			return err
		}
		sum.Add(name, results)
	}
	ref := "twm"
	found := false
	for _, e := range cfg.Engines {
		if e == ref {
			found = true
		}
	}
	if found {
		sum.Fig5iSpeedups(os.Stdout, ref)
	}
	sum.Table2(os.Stdout)
	sum.ReasonHistogram(os.Stdout)
	sum.ShardCommitSplit(os.Stdout)
	return nil
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
