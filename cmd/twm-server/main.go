// Command twm-server serves the transactional ledger API over an STM engine.
//
// Usage:
//
//	twm-server [flags]
//
// Every flag also reads an environment default (TWM_SERVER_<FLAG>, dashes as
// underscores), so container deployments configure it without a wrapper
// script; an explicit flag wins over the environment.
//
//	-addr     listen address                     (TWM_SERVER_ADDR, :8080)
//	-engine   STM engine from the registry       (TWM_SERVER_ENGINE, twm)
//	-accounts pre-created accounts               (TWM_SERVER_ACCOUNTS, 1024)
//	-balance  initial balance per account        (TWM_SERVER_BALANCE, 1000)
//	-gate     admission-gate slots               (TWM_SERVER_GATE, 4×GOMAXPROCS)
//	-gate-wait queue bound before a 429          (TWM_SERVER_GATE_WAIT, 0 = shed)
//	-timeout  per-request transaction deadline   (TWM_SERVER_TIMEOUT, 2s)
//	-drain    graceful-shutdown drain window     (TWM_SERVER_DRAIN, 5s)
//	-log      log level: debug|info|warn|error   (TWM_SERVER_LOG, info)
//	-debug    enable the /debugz fault drills    (TWM_SERVER_DEBUG, false)
//	-wal      WAL directory; empty = volatile    (TWM_SERVER_WAL, "")
//	-fsync    per-commit|per-batch|interval      (TWM_SERVER_FSYNC, per-commit)
//	-snapshot-every periodic checkpoint interval (TWM_SERVER_SNAPSHOT_EVERY, 1m)
//	-clock-shards partitioned clock domains      (TWM_SERVER_CLOCK_SHARDS, 1)
//
// With -wal the server is durable: boot replays the directory's snapshot and
// log before the listener opens, commits append their write sets before they
// are acknowledged (zero committed-transaction loss at -fsync per-commit),
// and shutdown writes a final checkpoint so the next boot replays almost
// nothing. See DESIGN.md §16.
//
// SIGINT/SIGTERM begin a graceful shutdown: the listener closes, in-flight
// requests run to completion inside the drain window (each bounded by the
// request timeout), then anything still retrying is cancelled. A second
// signal kills the process the usual way.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engines"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "twm-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("twm-server", flag.ContinueOnError)
	addr := fs.String("addr", envStr("ADDR", ":8080"), "listen address")
	engine := fs.String("engine", envStr("ENGINE", "twm"), "STM engine (one of "+strings.Join(engines.Names(), ", ")+")")
	accounts := fs.Int("accounts", envInt("ACCOUNTS", 1024), "pre-created accounts")
	balance := fs.Int64("balance", int64(envInt("BALANCE", 1000)), "initial balance per account")
	gate := fs.Int("gate", envInt("GATE", 0), "admission-gate slots (0 = 4×GOMAXPROCS)")
	gateWait := fs.Duration("gate-wait", envDur("GATE_WAIT", 0), "bounded queueing at the gate before a 429 (0 = pure shed)")
	timeout := fs.Duration("timeout", envDur("TIMEOUT", 2*time.Second), "per-request transaction deadline")
	drain := fs.Duration("drain", envDur("DRAIN", 5*time.Second), "graceful-shutdown drain window")
	logLevel := fs.String("log", envStr("LOG", "info"), "log level: debug|info|warn|error")
	debug := fs.Bool("debug", envBool("DEBUG", false), "enable the /debugz fault-drill endpoints")
	walDir := fs.String("wal", envStr("WAL", ""), "write-ahead-log directory (empty = volatile server)")
	fsync := fs.String("fsync", envStr("FSYNC", ""), "fsync policy: per-commit|per-batch|interval (default per-commit)")
	snapEvery := fs.Duration("snapshot-every", envDur("SNAPSHOT_EVERY", time.Minute), "periodic checkpoint interval (<0 disables)")
	clockShards := fs.Int("clock-shards", envInt("CLOCK_SHARDS", 1), "partitioned clock domains, accounts colocated per shard (1 = single global clock)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log %q: %w", *logLevel, err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := server.New(server.Config{
		Engine:         *engine,
		Accounts:       *accounts,
		InitialBalance: *balance,
		GateLimit:      *gate,
		GateWait:       *gateWait,
		RequestTimeout: *timeout,
		Logger:         log,
		Debug:          *debug,
		WALDir:         *walDir,
		FsyncPolicy:    *fsync,
		SnapshotEvery:  *snapEvery,
		ClockShards:    *clockShards,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Info("twm-server listening", "addr", ln.Addr().String(), "engine", *engine,
		"accounts", *accounts, "gate", srv.Gate().Limit(), "timeout", *timeout, "wal", *walDir)
	err = srv.Serve(ctx, ln, *drain)
	m := srv.Metrics()
	log.Info("twm-server stopped",
		"requests", m.Requests.Load(), "commits", m.Commits.Load(),
		"sheds", m.Sheds.Load(), "cancels", m.Cancels.Load(), "panics", m.Panics.Load(), "err", err)
	return err
}

// envStr/envInt/envDur/envBool read TWM_SERVER_<key> fallbacks for flag
// defaults.
func envStr(key, def string) string {
	if v := os.Getenv("TWM_SERVER_" + key); v != "" {
		return v
	}
	return def
}

func envInt(key string, def int) int {
	if v := os.Getenv("TWM_SERVER_" + key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func envDur(key string, def time.Duration) time.Duration {
	if v := os.Getenv("TWM_SERVER_" + key); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}

func envBool(key string, def bool) bool {
	if v := os.Getenv("TWM_SERVER_" + key); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return def
}
