// Command twm-lint statically enforces the repository's transactional
// usage discipline (DESIGN.md §9) with four analyzers: txescape, txpurity,
// rodiscipline and atomichygiene.
//
// It runs two ways:
//
//	twm-lint ./...                       # standalone; drives go vet under the hood
//	go vet -vettool=$(which twm-lint) ./...  # as a vet tool (what CI does)
//
// Both modes analyze test files and package variants exactly like go vet.
// A third mode, twm-lint -mode=source [dirs], type-checks from source
// without invoking the go command at all (no build cache needed); it skips
// _test.go files and is mainly useful for quick iteration on the analyzers
// themselves.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The go vet handshake probes the tool before handing it work: -V=full
	// must print an identifying version line (cached as part of the build
	// key), -flags must describe the tool's flags as JSON.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return 0
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	// A single .cfg argument means cmd/go is driving us over one package
	// unit (the unitchecker protocol).
	if args := os.Args[1:]; len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return framework.VetUnit(analysis.All(), args[0], os.Stderr)
	}

	fs := flag.NewFlagSet("twm-lint", flag.ExitOnError)
	mode := fs.String("mode", "vet", "how to load packages: vet (drive go vet, includes tests) or source (typecheck from source, no tests)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: twm-lint [-mode=vet|source] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	switch *mode {
	case "vet":
		return runVet(patterns)
	case "source":
		return runSource(patterns)
	default:
		fmt.Fprintf(os.Stderr, "twm-lint: unknown -mode %q\n", *mode)
		return 1
	}
}

// printVersion emits the version line the go command uses to fingerprint
// vet tools; hashing the executable makes rebuilds invalidate vet caches.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("twm-lint version devel buildID=%x\n", h.Sum(nil)[:12])
}

// runVet re-invokes this binary through `go vet -vettool`, which loads
// packages (tests included) and calls back into the .cfg branch above.
func runVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: locating own executable: %v\n", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "twm-lint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// runSource loads packages from source (non-test files) and analyzes them
// in-process.
func runSource(patterns []string) int {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
		return 1
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
		return 1
	}
	loader := framework.NewLoader(modRoot, modPath)
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
			exit = 1
			continue
		}
		diags, err := pkg.Run(analysis.All(), loader.Fset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
			exit = 2
		}
	}
	return exit
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s/go.mod", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// expandPatterns resolves go-style package patterns ("./...", "dir",
// "dir/...") to the set of directories containing non-test Go files,
// skipping testdata and hidden directories.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			root := rest
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(p)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
