// Command twm-lint statically enforces the repository's transactional
// usage discipline (DESIGN.md §9 and §14) with six analyzers: txescape,
// txpurity, rodiscipline, atomichygiene, txfuture and abortshape.
//
// It runs two ways:
//
//	twm-lint ./...                       # standalone; drives go vet under the hood
//	go vet -vettool=$(which twm-lint) ./...  # as a vet tool (what CI does)
//
// Both modes analyze test files and package variants exactly like go vet,
// and both propagate analysis facts across package boundaries (gob vetx
// files under go vet, an in-process fact store otherwise). A third mode,
// twm-lint -mode=source [dirs], type-checks from source without invoking
// the go command at all (no build cache needed); it skips _test.go files
// and is mainly useful for quick iteration on the analyzers themselves.
//
// Reporting flags:
//
//	-sarif=report.sarif      also write the findings as SARIF 2.1.0
//	-baseline=baseline.json  exit 0 for findings recorded in the baseline
//	-allowlist               audit //twm:allow directives instead of linting
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The go vet handshake probes the tool before handing it work: -V=full
	// must print an identifying version line (cached as part of the build
	// key), -flags must describe the tool's flags as JSON.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return 0
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	// A single .cfg argument means cmd/go is driving us over one package
	// unit (the unitchecker protocol).
	if args := os.Args[1:]; len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return framework.VetUnit(analysis.All(), args[0], os.Stderr)
	}

	fs := flag.NewFlagSet("twm-lint", flag.ExitOnError)
	mode := fs.String("mode", "vet", "how to load packages: vet (drive go vet, includes tests) or source (typecheck from source, no tests)")
	sarifPath := fs.String("sarif", "", "write findings as a SARIF 2.1.0 report to this file")
	baselinePath := fs.String("baseline", "", "JSON baseline of accepted findings; findings it covers do not fail the run")
	allowlist := fs.Bool("allowlist", false, "audit mode: list every //twm:allow directive with its justification instead of linting")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: twm-lint [-mode=vet|source] [-sarif=file] [-baseline=file] [-allowlist] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
		return 1
	}

	if *allowlist {
		return runAllowlist(modRoot, patterns)
	}

	var baseline []framework.DiagJSON
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
			return 1
		}
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: parsing baseline %s: %v\n", *baselinePath, err)
			return 1
		}
	}

	var findings []framework.DiagJSON
	exit := 0
	switch *mode {
	case "vet":
		findings, exit = runVet(patterns)
	case "source":
		findings, exit = runSource(modRoot, modPath, patterns)
	default:
		fmt.Fprintf(os.Stderr, "twm-lint: unknown -mode %q\n", *mode)
		return 1
	}
	if exit == 1 {
		return 1
	}

	for i := range findings {
		findings[i].File = relPath(modRoot, findings[i].File)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, findings); err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
			return 1
		}
	}

	// The baseline gates the exit code, not the report: every finding is
	// printed and lands in the SARIF file, but only findings the baseline
	// does not cover fail the run.
	fresh := 0
	for _, f := range findings {
		suffix := ""
		if inBaseline(baseline, f) {
			suffix = " [baseline]"
		} else {
			fresh++
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)%s\n", f.File, f.Line, f.Col, f.Message, f.Analyzer, suffix)
	}
	if fresh > 0 {
		return 2
	}
	return 0
}

// printVersion emits the version line the go command uses to fingerprint
// vet tools; hashing the executable makes rebuilds invalidate vet caches.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("twm-lint version devel buildID=%x\n", h.Sum(nil)[:12])
}

// runVet re-invokes this binary through `go vet -vettool`, which loads
// packages (tests included) and calls back into the .cfg branch above. The
// unit processes mirror their diagnostics as JSON into a temporary
// directory (DiagJSONDirEnv) so the driver owns reporting: vet's own text
// output is swallowed and replaced by the normalized, baseline-aware form.
func runVet(patterns []string) ([]framework.DiagJSON, int) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: locating own executable: %v\n", err)
		return nil, 1
	}
	diagDir, err := os.MkdirTemp("", "twm-lint-diag-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
		return nil, 1
	}
	defer os.RemoveAll(diagDir)

	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	var vetOut strings.Builder
	cmd.Stdout = &vetOut
	cmd.Stderr = &vetOut
	cmd.Env = append(os.Environ(), framework.DiagJSONDirEnv+"="+diagDir)
	vetErr := cmd.Run()

	findings, err := readDiagDir(diagDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
		return nil, 1
	}
	if vetErr != nil && len(findings) == 0 {
		// Nonzero exit with no mirrored diagnostics is an operational
		// failure (build error, bad pattern): surface vet's own output.
		io.WriteString(os.Stderr, vetOut.String())
		fmt.Fprintf(os.Stderr, "twm-lint: go vet: %v\n", vetErr)
		return nil, 1
	}
	return findings, 0
}

// readDiagDir collects the per-unit diagnostic JSON files the vet units
// wrote.
func readDiagDir(dir string) ([]framework.DiagJSON, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []framework.DiagJSON
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var unit []framework.DiagJSON
		if err := json.Unmarshal(data, &unit); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", e.Name(), err)
		}
		out = append(out, unit...)
	}
	return out, nil
}

// runSource loads packages from source (non-test files) and analyzes them
// in-process through a Session, so facts flow between packages exactly as
// they do under go vet.
func runSource(modRoot, modPath string, patterns []string) ([]framework.DiagJSON, int) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
		return nil, 1
	}
	loader := framework.NewLoader(modRoot, modPath)
	session := framework.NewSession(loader, analysis.All())
	var findings []framework.DiagJSON
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
			exit = 1
			continue
		}
		diags, err := session.Analyze(pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
			exit = 1
			continue
		}
		for _, d := range diags {
			p := loader.Fset.Position(d.Pos)
			findings = append(findings, framework.DiagJSON{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}
	return findings, exit
}

// runAllowlist prints every //twm:allow directive under the patterns (test
// files included, testdata excluded) so suppressions stay auditable.
func runAllowlist(modRoot string, patterns []string) int {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
		return 1
	}
	fset := token.NewFileSet()
	var all []framework.AllowDirective
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
			return 1
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "twm-lint: %v\n", err)
				return 1
			}
			all = append(all, framework.CollectAllows(fset, []*ast.File{f})...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		return all[i].Line < all[j].Line
	})
	for _, a := range all {
		just := a.Justification
		if just == "" {
			just = "(no justification)"
		}
		fmt.Printf("%s:%d: %s: %s\n", relPath(modRoot, a.File), a.Line, strings.Join(a.Rules, ","), just)
	}
	fmt.Printf("%d //twm:allow directive(s)\n", len(all))
	return 0
}

// inBaseline reports whether the baseline covers f. Matching ignores line
// and column so recorded findings survive unrelated edits to the file.
func inBaseline(baseline []framework.DiagJSON, f framework.DiagJSON) bool {
	for _, b := range baseline {
		if b.Analyzer == f.Analyzer && b.File == f.File && b.Message == f.Message {
			return true
		}
	}
	return false
}

// relPath rewrites an absolute position filename to a slash-separated path
// relative to the module root — the form baselines and SARIF use.
func relPath(modRoot, file string) string {
	if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s/go.mod", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// expandPatterns resolves go-style package patterns ("./...", "dir",
// "dir/...") to the set of directories containing non-test Go files,
// skipping testdata and hidden directories.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			root := rest
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(p)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
