package main

import (
	"encoding/json"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
)

// Minimal SARIF 2.1.0 document: one run, the analyzer suite as the rule
// set, one result per finding. Enough structure for code-scanning viewers
// and the CI artifact without modeling the rest of the format.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF writes findings (module-relative file paths) as a SARIF
// report. An empty findings slice still produces a valid document with an
// empty results array, so CI can upload the artifact unconditionally.
func writeSARIF(path string, findings []framework.DiagJSON) error {
	var rules []sarifRule
	for _, a := range analysis.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "twm-lint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
