// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one family per figure. These use container-sized inputs so
// `go test -bench=.` completes quickly; the cmd/twm-bench CLI runs the same
// experiments at full scale with table output.
//
// Reported custom metrics: aborts/op is the paper's abort-rate metric
// (restarts / executions); the Fig. 4(c) benchmark additionally reports the
// per-phase microsecond breakdown.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/engines"
	"repro/internal/hytm"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// benchThreads is the goroutine count used by the fixed-duration benchmark
// bodies (via SetParallelism); kept moderate so ns/op stays meaningful.
const benchThreads = 8

// yieldEvery matches the CLI default: one scheduler yield per barrier to
// simulate multi-core transaction overlap on few cores.
const yieldEvery = 1

// runMicroBench drives a Micro workload under testing.B with parallel
// workers and reports the abort rate.
func runMicroBench(b *testing.B, engine string, m bench.Micro) {
	b.Helper()
	inner := engines.MustNew(engine)
	tm := bench.WithYield(inner, yieldEvery)
	op, err := m.Prepare(tm, benchThreads)
	if err != nil {
		b.Fatal(err)
	}
	tm.Stats().Reset()
	b.SetParallelism(benchThreads) // GOMAXPROCS may be 1; this forces overlap
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(uint64(b.N) | 1)
		id := int(r.Uint64() % benchThreads)
		for pb.Next() {
			op(id, r)
		}
	})
	b.StopTimer()
	snap := tm.Stats().Snapshot()
	b.ReportMetric(float64(snap.Aborts)/float64(b.N), "aborts/op")
}

// BenchmarkFig3SkipList is Fig. 3(a) (ns/op ~ inverse throughput) and
// Fig. 3(b) (aborts/op) on the shared skip list with 25% updates.
func BenchmarkFig3SkipList(b *testing.B) {
	cfg := bench.SkipListConfig{Elements: 2000, KeyRange: 4000, UpdatePct: 0.25, Seed: 1}
	for _, engine := range engines.PaperSet() {
		b.Run(engine, func(b *testing.B) {
			runMicroBench(b, engine, bench.SkipListMicro(cfg))
		})
	}
}

// BenchmarkFig4aCounters is the Fig. 4(a) worst case: both counters written
// by every transaction.
func BenchmarkFig4aCounters(b *testing.B) {
	for _, engine := range engines.PaperSet() {
		b.Run(engine, func(b *testing.B) {
			runMicroBench(b, engine, bench.CountersMicro())
		})
	}
}

// BenchmarkFig4bDisjoint is the Fig. 4(b) conflict-free configuration
// (per-worker private skip lists, 100% updates).
func BenchmarkFig4bDisjoint(b *testing.B) {
	cfg := bench.DisjointConfig{ElementsPerList: 500, KeyRange: 1000, Seed: 1}
	for _, engine := range engines.PaperSet() {
		b.Run(engine, func(b *testing.B) {
			runMicroBench(b, engine, bench.DisjointMicro(cfg))
		})
	}
}

// BenchmarkFig4cOverhead reproduces the Fig. 4(c) per-phase breakdown,
// reported as us/tx metrics next to ns/op.
func BenchmarkFig4cOverhead(b *testing.B) {
	cfg := bench.DisjointConfig{ElementsPerList: 500, KeyRange: 1000, Seed: 1}
	for _, engine := range engines.PaperSet() {
		b.Run(engine, func(b *testing.B) {
			inner := engines.MustNew(engine)
			prof := &stm.Profiler{}
			inner.(stm.Profilable).SetProfiler(prof)
			tm := bench.WithYield(inner, yieldEvery)
			op, err := bench.DisjointMicro(cfg).Prepare(tm, benchThreads)
			if err != nil {
				b.Fatal(err)
			}
			prof.Reset()
			b.SetParallelism(benchThreads)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := xrand.New(uint64(b.N) | 1)
				id := int(r.Uint64() % benchThreads)
				for pb.Next() {
					op(id, r)
				}
			})
			b.StopTimer()
			bd := prof.Snapshot()
			b.ReportMetric(bd.ReadUS, "read-us/tx")
			b.ReportMetric(bd.ReadSetValUS, "readsetval-us/tx")
			b.ReportMetric(bd.WriteSetValUS, "writesetval-us/tx")
			b.ReportMetric(bd.CommitUS, "commit-us/tx")
		})
	}
}

// runStampBench runs a whole fixed-work application per iteration and
// reports Table 2's abort-rate metric.
func runStampBench(b *testing.B, engine string, mk func() stamp.Workload) {
	b.Helper()
	var aborts, execs uint64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunStamp(engine, mk, benchThreads, yieldEvery)
		if err != nil {
			b.Fatal(err)
		}
		aborts += res.Stats.Aborts
		execs += res.Stats.Commits + res.Stats.Aborts
	}
	if execs > 0 {
		b.ReportMetric(float64(aborts)/float64(execs)*100, "abort-%")
	}
}

// BenchmarkFig5 covers the eight STAMP panels of Fig. 5(a)-(h); the abort-%
// metric doubles as Table 2's per-benchmark entries.
func BenchmarkFig5(b *testing.B) {
	apps, err := bench.StampApps("small")
	if err != nil {
		b.Fatal(err)
	}
	for _, app := range bench.StampAppNames() {
		mk := apps[app]
		b.Run(app, func(b *testing.B) {
			for _, engine := range engines.PaperSet() {
				b.Run(engine, func(b *testing.B) {
					runStampBench(b, engine, mk)
				})
			}
		})
	}
}

// BenchmarkAblationTimeWarp isolates the contribution of Rules 1-2: the same
// TWM engine with time-warp commits disabled degenerates to classic
// validation over the same multi-version substrate (DESIGN.md §6).
func BenchmarkAblationTimeWarp(b *testing.B) {
	cfg := bench.SkipListConfig{Elements: 2000, KeyRange: 4000, UpdatePct: 0.25, Seed: 1}
	for _, engine := range []string{"twm", "twm-notw"} {
		b.Run(engine, func(b *testing.B) {
			runMicroBench(b, engine, bench.SkipListMicro(cfg))
		})
	}
}

// BenchmarkHybridFallback is the §6 future-work experiment: a simulated
// best-effort HTM with each STM engine as its fallback path, swept across
// hardware reliability levels. The question the paper poses — does a
// fallback STM with fewer spurious aborts help a hybrid TM? — shows up as
// the spread between engines growing as the fallback rate rises.
func BenchmarkHybridFallback(b *testing.B) {
	for _, abortProb := range []float64{0.0, 0.3, 0.9} {
		b.Run(fmt.Sprintf("hwAbortP=%.1f", abortProb), func(b *testing.B) {
			for _, engine := range []string{"twm", "tl2", "norec", "jvstm"} {
				b.Run(engine, func(b *testing.B) {
					tm := hytm.New(engines.MustNew(engine), hytm.Options{AbortProb: abortProb})
					const nv = 32
					vars := make([]stm.Var, nv)
					for i := range vars {
						vars[i] = tm.NewVar(0)
					}
					b.SetParallelism(benchThreads)
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						r := xrand.New(uint64(b.N) | 1)
						for pb.Next() {
							i, j := r.Intn(nv), r.Intn(nv)
							_ = tm.Atomically(false, func(tx stm.Tx) error {
								tx.Write(vars[i], tx.Read(vars[i]).(int)+1)
								tx.Write(vars[j], tx.Read(vars[j]).(int)-1)
								return nil
							})
						}
					})
					b.StopTimer()
					s := tm.HybridStats()
					total := float64(s.HWCommits.Load() + s.Fallbacks.Load())
					if total > 0 {
						b.ReportMetric(float64(s.Fallbacks.Load())/total*100, "fallback-%")
					}
				})
			}
		})
	}
}

// BenchmarkAblationTreeStructure compares the treap this repository's
// vacation uses against STAMP's red-black tree on the same mixed workload,
// quantifying the DESIGN.md substitution (same O(log n) conflict footprint).
func BenchmarkAblationTreeStructure(b *testing.B) {
	for _, impl := range []string{"treap", "rbtree"} {
		cfg := bench.DefaultTree(impl)
		cfg.Elements, cfg.KeyRange = 500, 1000
		for _, engine := range []string{"twm", "tl2"} {
			b.Run(impl+"/"+engine, func(b *testing.B) {
				runMicroBench(b, engine, bench.TreeMicro(cfg))
			})
		}
	}
}

// BenchmarkZipfContention sweeps access skew on the skip list: rising skew
// concentrates conflicts on hot keys, widening the gap between time-warping
// and classic validation.
func BenchmarkZipfContention(b *testing.B) {
	for _, s := range []float64{0, 0.99} {
		cfg := bench.DefaultTree("treap")
		cfg.Elements, cfg.KeyRange, cfg.ZipfS = 500, 1000, s
		for _, engine := range []string{"twm", "tl2", "norec"} {
			b.Run(fmt.Sprintf("s=%.2f/%s", s, engine), func(b *testing.B) {
				runMicroBench(b, engine, bench.TreeMicro(cfg))
			})
		}
	}
}

// BenchmarkAblationGCInterval sweeps the version-GC period: frequent passes
// pay walk cost, rare passes pay memory and version-list length on reads.
func BenchmarkAblationGCInterval(b *testing.B) {
	cfg := bench.SkipListConfig{Elements: 2000, KeyRange: 4000, UpdatePct: 0.25, Seed: 1}
	for _, every := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("gc=%d", every), func(b *testing.B) {
			tm := bench.WithYield(newTWMWithGC(every), yieldEvery)
			op, err := bench.SkipListMicro(cfg).Prepare(tm, benchThreads)
			if err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(benchThreads)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := xrand.New(uint64(b.N) | 1)
				for pb.Next() {
					op(0, r)
				}
			})
		})
	}
}
