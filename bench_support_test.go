package repro

import (
	"repro/internal/core"
	"repro/internal/stm"
)

// newTWMWithGC builds a TWM instance with a custom GC period for the
// ablation benchmark.
func newTWMWithGC(every int) stm.TM {
	return core.New(core.Options{GCEveryNCommits: every})
}
